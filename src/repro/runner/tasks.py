"""Built-in runner tasks.

Each task is a module-level function registered with
:func:`repro.runner.spec.register_task`.  Tasks import the simulators
*inside* the function body: this module is imported lazily by the task
registry, and the simulators themselves import the runner, so deferring
the heavy imports keeps the dependency graph acyclic and worker start-up
cheap.

Every task accepts a ``seed`` keyword argument and derives all of its
randomness from it (or ignores it when the underlying computation is
deterministic), so a task's result is a pure function of its spec.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from repro.runner.spec import register_task

__all__ = [
    "echo",
    "packet_arm",
    "fluid_arm",
    "baseline_table",
    "experiment_table",
    "aa_table",
    "switchback_emulation",
    "event_study_emulation",
    "figure_cells",
    "FIGURE_CELL_TASKS",
]


@register_task("debug.echo")
def echo(seed: int | None = None, **params: Any) -> dict[str, Any]:
    """Return the spec's own payload; used by tests and smoke checks."""
    return {"seed": seed, **params}


# -- netsim arms ---------------------------------------------------------------


@register_task("netsim.packet_arm")
def packet_arm(
    flows: Sequence[Any],
    capacity_mbps: float,
    base_rtt_ms: float,
    buffer_bdp: float,
    duration_s: float,
    warmup_s: float,
    mss_bytes: int = 1500,
    queue_discipline: str = "droptail",
    queue_params: Mapping[str, Any] | None = None,
    extra_queues: Sequence[Any] | None = None,
    cross_traffic: Sequence[Any] | None = None,
    traffic_sources: Sequence[Any] | None = None,
    seed: int | None = None,
    scheduler: str = "auto",
    event_batching: bool = False,
    batch_segments: int = 8,
    probe: Any = None,
) -> Any:
    """One packet-level simulation arm (a fixed set of flow configs).

    ``queue_discipline``/``queue_params`` select the bottleneck AQM;
    per-flow RTTs, ECN and loss segments travel inside the flow configs;
    ``extra_queues``/``cross_traffic`` describe multi-bottleneck
    topologies and unmeasured background load; ``traffic_sources`` add
    dynamic churn (finite flows spawning and retiring at runtime).
    ``scheduler`` selects the event engine (order-identical, never
    changes results); ``event_batching``/``batch_segments`` enable the
    approximate macro-packet fast path; ``probe`` attaches non-perturbing
    in-sim telemetry (a :class:`repro.obs.probe.ProbeConfig`).
    """
    from repro.netsim.packet.simulation import simulate

    return simulate(
        list(flows),
        capacity_mbps=capacity_mbps,
        base_rtt_ms=base_rtt_ms,
        buffer_bdp=buffer_bdp,
        mss_bytes=mss_bytes,
        duration_s=duration_s,
        warmup_s=warmup_s,
        queue_discipline=queue_discipline,
        queue_params=dict(queue_params) if queue_params else None,
        extra_queues=list(extra_queues) if extra_queues else None,
        cross_traffic=list(cross_traffic) if cross_traffic else None,
        traffic_sources=list(traffic_sources) if traffic_sources else None,
        seed=seed,
        scheduler=scheduler,
        event_batching=event_batching,
        batch_segments=batch_segments,
        probe=probe,
    )


@register_task("fleet.shard_arm")
def fleet_shard_arm(
    treated_mask: Sequence[bool],
    treatment_connections: int,
    control_connections: int,
    capacity_mbps: float,
    rtt_ms: float,
    loss_rate: float,
    buffer_bdp: float,
    duration_s: float,
    warmup_s: float,
    churn_per_s: float = 0.0,
    sketch_compression: int = 100,
    seed: int | None = None,
    probe_interval_s: float = 0.0,
) -> Any:
    """One fleet shard: an edge-bottleneck packet sim reduced to statistics.

    Returns a :class:`~repro.netsim.fleet.aggregate.ShardStats`, never the
    raw simulation result — the O(cells) contract of the fleet engine.
    ``probe_interval_s > 0`` samples queue depth at that sim-time cadence
    and folds it into the stats (still O(cells), never per-flow).
    """
    from repro.netsim.fleet.shard import run_shard

    return run_shard(
        tuple(bool(t) for t in treated_mask),
        treatment_connections=treatment_connections,
        control_connections=control_connections,
        capacity_mbps=capacity_mbps,
        rtt_ms=rtt_ms,
        loss_rate=loss_rate,
        buffer_bdp=buffer_bdp,
        duration_s=duration_s,
        warmup_s=warmup_s,
        churn_per_s=churn_per_s,
        sketch_compression=sketch_compression,
        seed=seed,
        probe_interval_s=probe_interval_s,
    )


@register_task("netsim.fluid_arm")
def fluid_arm(
    applications: Sequence[Any],
    link: Any = None,
    model: Any = None,
    noise: float = 0.0,
    seed: int | None = None,
) -> Any:
    """One fluid lab arm: a fixed application mix sharing the bottleneck."""
    from repro.netsim.fluid.lab import run_lab_experiment

    return run_lab_experiment(
        list(applications), link=link, model=model, noise=noise, seed=seed
    )


# -- paired-link workload tables -----------------------------------------------


@register_task("workload.baseline_table")
def baseline_table(config: Any, days: Sequence[int], seed: int | None = None) -> Any:
    """The untreated baseline week of the paired-link workload."""
    from repro.workload.netflix import PairedLinkWorkload

    return PairedLinkWorkload(config).generate_baseline(tuple(days))


@register_task("workload.experiment_table")
def experiment_table(
    config: Any, design: Any, days: Sequence[int], seed: int | None = None
) -> Any:
    """The main experiment week under a paired-link allocation plan."""
    from repro.workload.netflix import PairedLinkWorkload

    workload = PairedLinkWorkload(config)
    plan = design.allocation_plan(config.links, tuple(days))
    return workload.generate(plan, tuple(days), treatment_active=True)


@register_task("workload.aa_table")
def aa_table(config: Any, days: Sequence[int], seed: int | None = None) -> Any:
    """The post-experiment A/A week (labelled but never capped)."""
    from repro.workload.netflix import PairedLinkWorkload

    return PairedLinkWorkload(config).generate_aa_test(tuple(days))


# -- emulated alternate designs ------------------------------------------------


@register_task("experiments.switchback_emulation")
def switchback_emulation(
    table: Any,
    days: Sequence[int],
    metrics: Sequence[str],
    baselines: Mapping[str, float] | None = None,
    analysis: Any = None,
    seed: int | None = None,
) -> Any:
    """Emulated switchback TTE estimates from paired-link data."""
    from repro.experiments.alternate_designs import emulate_switchback

    return emulate_switchback(
        table,
        days,
        metrics=tuple(metrics),
        baselines=dict(baselines) if baselines else None,
        config=analysis,
    )


@register_task("experiments.event_study_emulation")
def event_study_emulation(
    table: Any,
    days: Sequence[int],
    metrics: Sequence[str],
    baselines: Mapping[str, float] | None = None,
    analysis: Any = None,
    seed: int | None = None,
) -> Any:
    """Emulated event-study TTE estimates from paired-link data."""
    from repro.experiments.alternate_designs import emulate_event_study

    return emulate_event_study(
        table,
        days,
        metrics=tuple(metrics),
        baselines=dict(baselines) if baselines else None,
        config=analysis,
    )


# -- multi-seed figure replication ---------------------------------------------

#: Figures the ``figure.cells`` task (and ``repro sweep``) can replicate.
FIGURE_CELL_TASKS: tuple[str, ...] = (
    "fig2a",
    "fig2b",
    "fig3",
    "baseline",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "topo_rtt",
    "topo_aqm",
    "topo_parking",
    "topo_fq",
    "topo_churn",
    "topo_l4s",
    "fleet",
)


@register_task("figure.cells")
def figure_cells(
    figure: str,
    quick: bool = False,
    noise: float = 0.0,
    seed: int | None = 0,
) -> dict[str, float]:
    """One replication of a figure, reduced to its scalar cells.

    Returns a flat ``{cell name: value}`` mapping so ``repro sweep`` can
    aggregate mean and confidence intervals across seeds.  Lab figures use
    ``noise`` as the measurement-noise level (their outcomes are otherwise
    deterministic); paired-link figures re-run the synthetic workload with
    the given seed.
    """
    if figure in ("fig2a", "fig2b", "fig3"):
        return _lab_cells(figure, noise=noise, seed=seed)
    if figure == "topo_churn":
        # Unlike the other topology figures, churn consumes the seed:
        # arrival times and flow sizes are drawn from it.
        return _churn_cells(quick=quick, seed=seed)
    if figure == "fleet":
        # The fleet consumes the seed too: the treatment assignment and
        # every squeezed shard's loss stream derive from it.
        return _fleet_cells(quick=quick, seed=seed)
    if figure in ("topo_rtt", "topo_aqm", "topo_parking", "topo_fq", "topo_l4s"):
        return _topology_cells(figure, quick=quick)
    if figure in FIGURE_CELL_TASKS:
        return _paired_cells(figure, quick=quick, seed=seed)
    raise KeyError(
        f"figure {figure!r} cannot be swept; choose one of {FIGURE_CELL_TASKS}"
    )


def _lab_cells(figure: str, noise: float, seed: int | None) -> dict[str, float]:
    from repro.experiments import (
        run_cc_experiment,
        run_connections_experiment,
        run_pacing_experiment,
    )

    runners = {
        "fig2a": run_connections_experiment,
        "fig2b": run_pacing_experiment,
        "fig3": run_cc_experiment,
    }
    fig = runners[figure](noise=noise, seed=seed)
    return {
        "tte_throughput_mbps": fig.tte("throughput_mbps"),
        "tte_retransmit_fraction": fig.tte("retransmit_fraction"),
        "ab_throughput_mbps@0.5": fig.ab_estimate("throughput_mbps", 0.5),
        "spillover_throughput@0.5": fig.spillover("throughput_mbps", 0.5),
    }


def _topology_cells(figure: str, quick: bool) -> dict[str, float]:
    # Packet-level topology figures are deterministic, so the seed is
    # deliberately not consumed: every replication returns the same cells
    # (topo_l4s pins DualPI2's lottery seed to the experiment default).
    from repro.experiments.lab_l4s import run_l4s_experiment
    from repro.experiments.lab_parking_lot import (
        run_fq_experiment,
        run_parking_lot_experiment,
    )
    from repro.experiments.lab_topology import run_aqm_experiment, run_rtt_experiment

    if figure == "topo_l4s":
        comparison = run_l4s_experiment(quick=quick)
        cells = {
            f"bias_throughput@0.5:{arm}": comparison.bias(arm)
            for arm in comparison.figures
        }
        cells["coexistence_ratio"] = comparison.coexistence_ratio
        return cells
    if figure == "topo_rtt":
        fig = run_rtt_experiment(quick=quick)
        return {
            "tte_throughput_mbps": fig.tte("throughput_mbps"),
            "tte_retransmit_fraction": fig.tte("retransmit_fraction"),
            "ab_throughput_mbps@0.5": fig.ab_estimate("throughput_mbps", 0.5),
            "spillover_throughput@0.5": fig.spillover("throughput_mbps", 0.5),
        }
    if figure == "topo_parking":
        parking = run_parking_lot_experiment(quick=quick)
        cells = {
            f"bias_throughput@0.5:{topology}": parking.bias(topology)
            for topology in parking.figures
        }
        cells["remote_spillover_mbps"] = parking.remote_spillover_mbps
        return cells
    if figure == "topo_fq":
        comparison = run_fq_experiment(quick=quick)
    else:
        comparison = run_aqm_experiment(quick=quick)
    cells = {}
    for discipline, fig in comparison.figures.items():
        cells[f"bias_throughput@0.5:{discipline}"] = comparison.bias(discipline)
        cells[f"tte_throughput_mbps:{discipline}"] = fig.tte("throughput_mbps")
        cells[f"ab_throughput_mbps@0.5:{discipline}"] = fig.ab_estimate(
            "throughput_mbps", 0.5
        )
    return cells


def _churn_cells(quick: bool, seed: int | None) -> dict[str, float]:
    from repro.experiments.lab_churn import run_churn_experiment

    comparison = run_churn_experiment(quick=quick, seed=0 if seed is None else seed)
    cells: dict[str, float] = {}
    for rate in comparison.rates():
        cells[f"bias_throughput@0.5:churn{rate:g}"] = comparison.bias(rate)
        stats = comparison.churn[rate]
        cells[f"churn_flows_completed:churn{rate:g}"] = float(stats.flows_completed)
        # Always emit the FCT cells so replications agree on the cell set
        # (0.0 stands for "no completions", which only zero churn hits).
        cells[f"mean_fct_s:churn{rate:g}"] = (
            0.0 if stats.mean_fct_s is None else stats.mean_fct_s
        )
        for name, value in (
            ("p50", stats.p50_fct_s),
            ("p95", stats.p95_fct_s),
            ("p99", stats.p99_fct_s),
        ):
            cells[f"fct_{name}_s:churn{rate:g}"] = 0.0 if value is None else value
    return cells


def _fleet_cells(quick: bool, seed: int | None) -> dict[str, float]:
    from repro.experiments.lab_fleet import run_fleet_experiment

    comparison = run_fleet_experiment(quick=quick, seed=0 if seed is None else seed)
    cells: dict[str, float] = {"tte_throughput_mbps": comparison.truth_tte}
    for granularity, outcome in comparison.outcomes.items():
        cells[f"ab_throughput_mbps@0.5:{granularity}"] = outcome.ab_estimate()
        cells[f"bias_throughput@0.5:{granularity}"] = comparison.bias(granularity)
        cells[f"p50_treated_mbps:{granularity}"] = outcome.result.quantile(
            "treated", "throughput_mbps", 0.5
        )
    return cells


def _paired_cells(figure: str, quick: bool, seed: int | None) -> dict[str, float]:
    from repro.core.units import SESSION_METRICS
    from repro.experiments import (
        PairedLinkExperiment,
        compare_designs,
        compare_links_at_baseline,
    )
    from repro.workload import WorkloadConfig

    sessions = 150 if quick else 300
    config = WorkloadConfig(sessions_at_peak=sessions, seed=0 if seed is None else seed)
    outcome = PairedLinkExperiment(config=config).run()

    if figure == "baseline":
        return {
            f"rel_diff_pct:{row.metric}": row.relative_percent
            for row in compare_links_at_baseline(outcome.baseline_table)
        }
    if figure == "fig5":
        cells: dict[str, float] = {}
        for estimand in ("ab_0.05", "ab_0.95", "tte", "spillover"):
            for metric in SESSION_METRICS:
                cells[f"{estimand}:{metric}"] = outcome.estimates[estimand][
                    metric
                ].relative_percent
        return cells
    if figure == "fig7":
        c = outcome.figure7_cells()
        return {
            "link1_treated": c.link1_treated,
            "link1_control": c.link1_control,
            "link2_treated": c.link2_treated,
            "link2_control": c.link2_control,
        }
    if figure == "fig8":
        c = outcome.figure8_cells()
        return {
            "link1_treated": c.link1_treated,
            "link1_control": c.link1_control,
            "link2_treated": c.link2_treated,
            "link2_control": c.link2_control,
        }
    if figure == "fig9":
        split = outcome.figure9_retransmit_split()
        return {name: 100.0 * value for name, value in split.items()}
    if figure == "fig10":
        comparison = compare_designs(
            outcome.experiment_table,
            outcome.days,
            outcome.estimates["tte"],
            baselines=outcome.baselines,
        )
        cells = {}
        for design in comparison.DESIGNS:
            for metric in SESSION_METRICS:
                estimate = getattr(comparison, design)[metric]
                cells[f"{design}:{metric}"] = estimate.relative_percent
        return cells
    raise KeyError(f"unknown paired-link figure {figure!r}")
