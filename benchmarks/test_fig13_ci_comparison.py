"""Figure 13: effect sizes and confidence intervals, hourly vs account aggregation.

Paper finding: aggregating to the hourly level (treating sessions within
an hour as perfectly correlated) produces much wider confidence intervals
than the standard account-level analysis, while the point estimates agree.
"""

from benchmarks._helpers import run_once

from repro.reporting import format_table

METRICS = ("throughput_mbps", "video_bitrate_kbps", "min_rtt_ms", "play_delay_s")


def test_fig13_hourly_vs_account_intervals(benchmark, paired_outcome):
    comparison = run_once(benchmark, paired_outcome.figure13_ci_comparison, METRICS)

    rows = []
    for metric in METRICS:
        hourly = comparison["hourly"][metric].relative
        account = comparison["account"][metric].relative
        rows.append(
            [
                metric,
                f"{100 * hourly.estimate:+.1f}% "
                f"[{100 * hourly.ci_low:+.1f}, {100 * hourly.ci_high:+.1f}]",
                f"{100 * account.estimate:+.1f}% "
                f"[{100 * account.ci_low:+.1f}, {100 * account.ci_high:+.1f}]",
            ]
        )
    print("\n" + format_table(["metric", "hourly aggregation", "account aggregation"], rows))

    for metric in METRICS:
        hourly = comparison["hourly"][metric].relative
        account = comparison["account"][metric].relative
        # Hourly (worst-case correlation) intervals are at least as wide.
        assert hourly.width >= 0.9 * account.width, metric
        # The two analyses agree on the point estimate.
        assert abs(hourly.estimate - account.estimate) < 0.1, metric

    # For throughput (which carries shared per-hour shocks) the hourly
    # intervals are strictly wider.
    assert (
        comparison["hourly"]["throughput_mbps"].relative.width
        > comparison["account"]["throughput_mbps"].relative.width
    )
