"""Declarative description of a sharded fleet experiment.

A fleet is ``units`` bulk-transfer senders spread over ``edges``
independent edge bottlenecks (one packet simulation each), grouped into
``regions`` whose aggregation links — and the backbone above them — are
approximated by the vectorized fluid model
(:mod:`repro.netsim.fleet.hybrid`).  The A/B treatment is the paper's
multiple-connections intervention; ``granularity`` controls the
randomization unit (``"unit"``, ``"edge"`` or ``"region"``), which is
exactly the cluster-size axis of the paper's bias question, now at fleet
scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["FleetSpec", "GRANULARITIES", "fleet_assignment"]

#: Supported randomization granularities, finest to coarsest.
GRANULARITIES: tuple[str, ...] = ("unit", "edge", "region")


@dataclass(frozen=True)
class FleetSpec:
    """Configuration of one fleet run.

    Parameters
    ----------
    units:
        Total experimental units (bulk senders) in the fleet.  Spread
        over edges as evenly as possible (the first ``units % edges``
        edges hold one extra unit).
    edges:
        Independent edge bottlenecks; each runs one packet simulation.
    regions:
        Aggregation groups of edges.  Edges are assigned to regions in
        contiguous blocks.
    granularity:
        Randomization unit: ``"unit"``, ``"edge"`` or ``"region"``.
    allocation:
        Treated fraction of clusters (balanced assignment: exactly
        ``round(allocation * clusters)`` clusters are treated).
    treatment_connections, control_connections:
        Parallel TCP connections a treated/control unit opens — the
        paper's Figure 2a intervention.
    edge_capacity_mbps:
        Capacity of every edge bottleneck.
    region_oversubscription:
        Region aggregation-link capacity as a fraction of the summed
        capacity of its member edges.  Values below 1 make edges within a
        region compete (the coupling that edge-granularity assignment is
        exposed to); 1 or more leaves region links uncongested.
    backbone_oversubscription:
        Backbone capacity as a fraction of the summed region-link
        capacities.  At the default (>= 1) the backbone never binds and
        region-granularity assignment is interference-free.
    rtt_profile_ms:
        Edge round-trip times, cycled over edges (edge ``e`` gets
        ``rtt_profile_ms[e % len]``) — the heterogeneity that makes
        shards genuinely distinct simulations.
    backbone_rtt_ms:
        Extra two-way propagation every unit pays for crossing the core.
    backbone_queue_delay_ms:
        Standing queueing delay added on paths through a *saturated*
        region link (its drop-tail buffer is full in steady state).
    buffer_bdp:
        Edge bottleneck buffer in bandwidth-delay products.
    duration_s, warmup_s:
        Simulated horizon of every shard and the measurement warm-up.
    churn_per_s:
        Per-edge arrival rate of dynamic short flows (Poisson arrivals,
        Pareto sizes).  Their completion times feed the fleet's FCT
        sketch; 0 disables churn.
    sketch_compression:
        Compression factor of the per-cell quantile sketches
        (:class:`repro.core.analysis.QuantileSketch`).
    probe_interval_s:
        Sim-time cadence of in-shard queue-depth probing, in seconds.
        0 (default) disables probing; when positive every shard samples
        its edge queue at this cadence and folds the depths into the
        ``fleet:queue_depth_pkts`` cell.  Probing never perturbs shard
        results and the knob is inert in content keys when 0.
    seed:
        Master seed: the treatment assignment and every shard's derived
        seed are pure functions of it.
    """

    units: int
    edges: int
    regions: int = 4
    granularity: str = "unit"
    allocation: float = 0.5
    treatment_connections: int = 2
    control_connections: int = 1
    edge_capacity_mbps: float = 24.0
    region_oversubscription: float = 0.7
    backbone_oversubscription: float = 1.25
    rtt_profile_ms: tuple[float, ...] = (10.0, 20.0, 40.0, 80.0)
    backbone_rtt_ms: float = 20.0
    backbone_queue_delay_ms: float = 10.0
    buffer_bdp: float = 2.0
    duration_s: float = 4.0
    warmup_s: float = 1.0
    churn_per_s: float = 0.0
    sketch_compression: int = 100
    probe_interval_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError("units must be positive")
        if not 1 <= self.edges <= self.units:
            raise ValueError("edges must be in [1, units]")
        if not 1 <= self.regions <= self.edges:
            raise ValueError("regions must be in [1, edges]")
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"granularity must be one of {GRANULARITIES}, got {self.granularity!r}"
            )
        if not 0.0 <= self.allocation <= 1.0:
            raise ValueError("allocation must be in [0, 1]")
        if self.treatment_connections < 1 or self.control_connections < 1:
            raise ValueError("connection counts must be at least 1")
        if self.edge_capacity_mbps <= 0:
            raise ValueError("edge_capacity_mbps must be positive")
        if self.region_oversubscription <= 0 or self.backbone_oversubscription <= 0:
            raise ValueError("oversubscription factors must be positive")
        if not self.rtt_profile_ms or any(r <= 0 for r in self.rtt_profile_ms):
            raise ValueError("rtt_profile_ms must be non-empty and positive")
        if self.duration_s <= self.warmup_s:
            raise ValueError("duration_s must exceed warmup_s")
        if self.churn_per_s < 0:
            raise ValueError("churn_per_s must be non-negative")
        if self.probe_interval_s < 0:
            raise ValueError("probe_interval_s must be non-negative")

    # -- fleet geometry ------------------------------------------------

    def units_on_edge(self, edge: int) -> int:
        """Number of units homed on the given edge."""
        base, extra = divmod(self.units, self.edges)
        return base + (1 if edge < extra else 0)

    def first_unit_on_edge(self, edge: int) -> int:
        """Global id of the first unit homed on the given edge."""
        base, extra = divmod(self.units, self.edges)
        return edge * base + min(edge, extra)

    def region_of(self, edge: int) -> int:
        """Region of the given edge (contiguous blocks of edges)."""
        return edge * self.regions // self.edges

    def edges_in_region(self, region: int) -> range:
        """Edges belonging to the given region."""
        start = (region * self.edges + self.regions - 1) // self.regions
        end = ((region + 1) * self.edges + self.regions - 1) // self.regions
        return range(start, end)

    def edge_rtt_ms(self, edge: int) -> float:
        """Round-trip time of the given edge's bottleneck."""
        return self.rtt_profile_ms[edge % len(self.rtt_profile_ms)]

    def clusters(self) -> int:
        """Number of randomization clusters at this spec's granularity."""
        return {
            "unit": self.units,
            "edge": self.edges,
            "region": self.regions,
        }[self.granularity]

    def cluster_size(self) -> float:
        """Mean units per randomization cluster."""
        return self.units / self.clusters()


def fleet_assignment(spec: FleetSpec) -> list[tuple[bool, ...]]:
    """Balanced treatment assignment, one mask of unit flags per edge.

    Exactly ``round(allocation * clusters)`` clusters are treated,
    sampled without replacement from a deterministic RNG seeded by the
    spec's master seed and granularity — the same derivation idiom as the
    packet sweep, so assignments are reproducible across processes and
    platforms.
    """
    rng = random.Random(f"fleet-assign:{spec.seed}:{spec.granularity}")
    n_clusters = spec.clusters()
    n_treated = round(spec.allocation * n_clusters)
    treated_clusters = frozenset(rng.sample(range(n_clusters), n_treated))

    masks: list[tuple[bool, ...]] = []
    for edge in range(spec.edges):
        n_units = spec.units_on_edge(edge)
        if spec.granularity == "edge":
            flag = edge in treated_clusters
            masks.append((flag,) * n_units)
        elif spec.granularity == "region":
            flag = spec.region_of(edge) in treated_clusters
            masks.append((flag,) * n_units)
        else:
            first = spec.first_unit_on_edge(edge)
            masks.append(
                tuple(first + i in treated_clusters for i in range(n_units))
            )
    return masks
