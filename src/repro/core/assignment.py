"""Randomized treatment assignment.

The paper's designs differ only in *how* units are mapped to treatment and
control:

* A naive A/B test assigns each unit independently Bernoulli(p)
  (:func:`bernoulli_assignment`).
* The paired-link experiment runs two simultaneous A/B tests with very
  different allocations (95 % and 5 %) on two separate links.
* Switchback experiments randomize time intervals rather than units
  (:func:`interval_assignment`), then apply a within-interval allocation.
* Gradual deployments apply a deterministic, increasing allocation
  schedule (:func:`fixed_fraction_assignment` per step).

All functions return an :class:`Assignment`, which records the treatment
vector together with the allocation probability so downstream estimators
know which ``tau(p)`` they estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = [
    "Assignment",
    "bernoulli_assignment",
    "fixed_fraction_assignment",
    "interval_assignment",
    "cluster_assignment",
]


@dataclass(frozen=True)
class Assignment:
    """The result of randomizing units to treatment or control.

    Attributes
    ----------
    treated:
        Boolean array: ``treated[i]`` is True when unit ``i`` is in the
        treatment group (``A_i = 1`` in the paper's notation).
    allocation:
        The treatment allocation ``p``: the (expected or exact) fraction
        of units assigned to treatment.
    seed:
        Seed used for the randomization, if any, for reproducibility.
    """

    treated: np.ndarray
    allocation: float
    seed: int | None = None

    def __post_init__(self) -> None:
        arr = np.asarray(self.treated, dtype=bool)
        object.__setattr__(self, "treated", arr)
        if not 0.0 <= self.allocation <= 1.0:
            raise ValueError(f"allocation must be in [0, 1], got {self.allocation}")

    @property
    def n_units(self) -> int:
        """Total number of units in the assignment."""
        return int(self.treated.shape[0])

    @property
    def n_treated(self) -> int:
        """Number of treated units."""
        return int(self.treated.sum())

    @property
    def n_control(self) -> int:
        """Number of control units."""
        return self.n_units - self.n_treated

    @property
    def realized_allocation(self) -> float:
        """The realized (empirical) fraction of treated units."""
        if self.n_units == 0:
            return 0.0
        return self.n_treated / self.n_units

    def treatment_indices(self) -> np.ndarray:
        """Indices of treated units."""
        return np.flatnonzero(self.treated)

    def control_indices(self) -> np.ndarray:
        """Indices of control units."""
        return np.flatnonzero(~self.treated)

    def inverted(self) -> "Assignment":
        """Return the assignment with treatment and control swapped."""
        return Assignment(~self.treated, 1.0 - self.allocation, self.seed)


def bernoulli_assignment(
    n_units: int, allocation: float, seed: int | None = None
) -> Assignment:
    """Assign each unit to treatment independently with probability ``allocation``.

    This is the assignment mechanism of a classic A/B test (Section 2 of the
    paper): ``A_i ~ Bernoulli(p)`` i.i.d. across units.

    Parameters
    ----------
    n_units:
        Number of units to assign.
    allocation:
        Treatment probability ``p``.
    seed:
        Optional seed for reproducibility.
    """
    if n_units < 0:
        raise ValueError("n_units must be non-negative")
    if not 0.0 <= allocation <= 1.0:
        raise ValueError("allocation must be in [0, 1]")
    rng = np.random.default_rng(seed)
    treated = rng.random(n_units) < allocation
    return Assignment(treated, allocation, seed)


def fixed_fraction_assignment(
    n_units: int, allocation: float, seed: int | None = None
) -> Assignment:
    """Assign exactly ``round(allocation * n_units)`` units to treatment.

    A completely randomized design: the number of treated units is fixed, and
    which units are treated is chosen uniformly at random.  The lab
    experiments of Section 3 use this mechanism (e.g. exactly ``k`` of the
    10 applications use two connections).
    """
    if n_units < 0:
        raise ValueError("n_units must be non-negative")
    if not 0.0 <= allocation <= 1.0:
        raise ValueError("allocation must be in [0, 1]")
    n_treated = int(round(allocation * n_units))
    rng = np.random.default_rng(seed)
    order = rng.permutation(n_units)
    treated = np.zeros(n_units, dtype=bool)
    treated[order[:n_treated]] = True
    return Assignment(treated, allocation, seed)


def interval_assignment(
    n_intervals: int,
    treatment_probability: float = 0.5,
    seed: int | None = None,
    force_both_arms: bool = True,
) -> np.ndarray:
    """Randomize time intervals to treatment or control (switchback design).

    Each interval is independently assigned to be a *treatment interval*
    (where almost all traffic runs the new algorithm) or a *control
    interval*.  Section 5.2 of the paper recommends this for targeted
    switchback experiments.

    Parameters
    ----------
    n_intervals:
        Number of time intervals (e.g. days).
    treatment_probability:
        Probability that a given interval is a treatment interval.
    seed:
        Optional randomization seed.
    force_both_arms:
        When True (the default), re-randomize until at least one interval is
        in each arm, mirroring the paper's requirement that "at least one day
        was in treatment and at least one day was in control".

    Returns
    -------
    numpy.ndarray
        Boolean array of length ``n_intervals``; True marks treatment
        intervals.
    """
    if n_intervals <= 0:
        raise ValueError("n_intervals must be positive")
    if not 0.0 <= treatment_probability <= 1.0:
        raise ValueError("treatment_probability must be in [0, 1]")
    if force_both_arms and n_intervals < 2:
        raise ValueError("force_both_arms requires at least two intervals")
    rng = np.random.default_rng(seed)
    while True:
        assignment = rng.random(n_intervals) < treatment_probability
        if not force_both_arms:
            return assignment
        if assignment.any() and not assignment.all():
            return assignment


def cluster_assignment(
    cluster_ids: Sequence[int] | np.ndarray,
    allocation: float,
    seed: int | None = None,
) -> Assignment:
    """Assign whole clusters of units to treatment together.

    All units sharing a cluster id receive the same treatment.  Cluster
    randomization is the standard mitigation for interference when the
    interference structure is known (e.g. randomize per network or per ISP
    rather than per session).  The paired-link experiment is an extreme
    form: the two links are two clusters receiving different allocations.

    Parameters
    ----------
    cluster_ids:
        Cluster id for each unit (length = number of units).
    allocation:
        Probability that a cluster is assigned to treatment.
    seed:
        Optional randomization seed.
    """
    ids = np.asarray(cluster_ids)
    if ids.ndim != 1:
        raise ValueError("cluster_ids must be one-dimensional")
    unique = np.unique(ids)
    rng = np.random.default_rng(seed)
    cluster_treated = {c: bool(rng.random() < allocation) for c in unique}
    treated = np.array([cluster_treated[c] for c in ids], dtype=bool)
    return Assignment(treated, allocation, seed)
