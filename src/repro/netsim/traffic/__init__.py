"""Dynamic-traffic subsystem: finite flows, arrivals, churn and demand.

Everything the static packet simulator assumed away: flows that start
mid-simulation, transfer a finite (heavy-tailed) number of bytes, record
a flow-completion time and retire; arrival processes (Poisson, on/off
bursts, traces) whose intensity can follow a time-varying demand profile
(steps, ramps, the workload layer's diurnal shape).

Attach a :class:`TrafficSource` to a simulation via
``simulate(..., traffic_sources=[...])`` or
:meth:`repro.netsim.packet.network.Network.add_traffic_source`; per-source
lifecycle results come back in ``PacketSimResult.traffic``.
"""

from repro.netsim.traffic.arrivals import (
    ArrivalProcess,
    OnOffSource,
    PoissonArrivals,
    TraceArrivals,
)
from repro.netsim.traffic.demand import (
    ConstantDemand,
    DemandProfile,
    DiurnalDemand,
    RampDemand,
    StepDemand,
)
from repro.netsim.traffic.sizes import (
    EmpiricalSizes,
    FixedSizes,
    LogNormalSizes,
    ParetoSizes,
    SizeSampler,
)
from repro.netsim.traffic.source import DynamicTrafficResult, TrafficSource

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffSource",
    "TraceArrivals",
    "DemandProfile",
    "ConstantDemand",
    "StepDemand",
    "RampDemand",
    "DiurnalDemand",
    "SizeSampler",
    "FixedSizes",
    "ParetoSizes",
    "LogNormalSizes",
    "EmpiricalSizes",
    "TrafficSource",
    "DynamicTrafficResult",
]
