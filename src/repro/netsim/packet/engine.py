"""Discrete-event scheduling engine.

A minimal, dependency-free event scheduler built on a binary heap.  Events
are ``(time, sequence, callback)`` tuples; the sequence number breaks ties
so that events scheduled earlier run earlier and comparison never falls
through to the (non-comparable) callback.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

__all__ = ["EventScheduler"]


class EventScheduler:
    """A simple discrete-event scheduler.

    Example
    -------
    >>> sched = EventScheduler()
    >>> fired = []
    >>> sched.schedule(1.0, lambda: fired.append("a"))
    >>> sched.schedule(0.5, lambda: fired.append("b"))
    >>> sched.run(until=2.0)
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run at absolute ``time``.

        Returns an event id usable with :meth:`cancel`.  Scheduling in the
        past raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event_id = next(self._counter)
        heapq.heappush(self._heap, (float(time), event_id, callback))
        return event_id

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, callback)

    def cancel(self, event_id: int) -> None:
        """Cancel a previously scheduled event (lazily, at pop time)."""
        self._cancelled.add(event_id)

    def __len__(self) -> int:
        return len(self._heap)

    def run(self, until: float) -> None:
        """Run events in time order until the clock reaches ``until``."""
        while self._heap and self._heap[0][0] <= until:
            time, event_id, callback = heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._now = time
            callback()
        self._now = max(self._now, until)

    def step(self) -> bool:
        """Run a single event.  Returns False when no events remain."""
        while self._heap:
            time, event_id, callback = heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._now = time
            callback()
            return True
        return False
