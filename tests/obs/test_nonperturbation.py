"""Probes and counters must never change what a simulation computes.

These tests pin the observability layer's two core contracts:

* **Non-perturbation** — running with a probe produces byte-identical
  flow results, drop counters and engine counters to running without
  one, for both scheduler kinds and for fleet shards.
* **Content-key inertness** — every new telemetry knob defaults off and
  stays out of spec parameters when unset, so enabling observability on
  one run can never split another run's result cache.
"""

from dataclasses import replace

import pytest

from repro.netsim.fleet import FleetSpec, run_fleet
from repro.netsim.fleet.aggregate import QUEUE_DEPTH_CELL
from repro.netsim.packet.simulation import FlowConfig, simulate
from repro.obs import EngineCounters, ProbeConfig
from repro.runner.spec import ScenarioSpec, content_key

PROBE = ProbeConfig(interval_s=0.5)


def _run(scheduler="auto", probe=None):
    return simulate(
        [FlowConfig(0, cc="reno", connections=2), FlowConfig(1, cc="cubic")],
        capacity_mbps=20.0,
        duration_s=4.0,
        warmup_s=1.0,
        scheduler=scheduler,
        probe=probe,
    )


class TestProbeNonPerturbation:
    def test_probed_run_is_bit_identical(self):
        plain = _run()
        probed = _run(probe=PROBE)
        assert [(f.flow_id, f.throughput_mbps, f.packets_sent, f.packets_lost)
                for f in plain.flows] == [
            (f.flow_id, f.throughput_mbps, f.packets_sent, f.packets_lost)
            for f in probed.flows
        ]
        assert plain.total_drops == probed.total_drops
        assert plain.queue_drops == probed.queue_drops
        # Same events popped, same events scheduled: the probe barriers
        # did not add, remove or reorder a single scheduler event.
        assert plain.engine == probed.engine

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_both_scheduler_kinds_unperturbed(self, scheduler):
        plain = _run(scheduler=scheduler)
        probed = _run(scheduler=scheduler, probe=PROBE)
        assert plain.flows == probed.flows
        assert plain.engine == probed.engine
        assert plain.engine.scheduler == scheduler

    def test_probe_log_populated(self):
        probed = _run(probe=PROBE)
        log = probed.probe
        assert log is not None
        assert log.sample_times == tuple(k * 0.5 for k in range(1, 9))
        assert log.names("queue") == ("bottleneck",)
        assert log.names("flow") == ("conn0", "conn1", "conn2")
        depth = log.series("queue", "bottleneck", "occupancy_packets")
        assert len(depth) == 8
        cwnd = log.series("flow", "conn0", "cwnd")
        assert all(v > 0 for _, v in cwnd)

    def test_unprobed_run_has_no_log(self):
        assert _run().probe is None


class TestEngineCounters:
    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    def test_uniform_schema_across_scheduler_kinds(self, scheduler):
        engine = _run(scheduler=scheduler).engine
        assert isinstance(engine, EngineCounters)
        assert engine.scheduler == scheduler
        assert engine.events_processed > 0
        assert engine.events_scheduled > 0
        assert engine.pool_acquired > 0
        assert set(engine.as_dict()) == {
            "events_processed",
            "events_scheduled",
            "pool_acquired",
            "pool_reused",
            "random_losses",
        }

    def test_processed_never_exceeds_scheduled(self):
        engine = _run().engine
        assert engine.events_processed <= engine.events_scheduled


class TestFleetProbing:
    SPEC = FleetSpec(units=40, edges=4, regions=2, duration_s=1.0, warmup_s=0.25)

    def test_fleet_estimates_unchanged_by_probing(self):
        plain = run_fleet(self.SPEC)
        probed = run_fleet(replace(self.SPEC, probe_interval_s=0.25))
        assert plain.ab_estimate("throughput_mbps") == probed.ab_estimate(
            "throughput_mbps"
        )
        assert plain.engine_counters()["events_processed"] == probed.engine_counters()[
            "events_processed"
        ]

    def test_probed_fleet_collects_queue_depth_cell(self):
        probed = run_fleet(replace(self.SPEC, probe_interval_s=0.25))
        cell = probed.stats.cells[QUEUE_DEPTH_CELL]
        # One sample per probe instant per shard, merged across the fleet.
        assert cell.stats.count >= self.SPEC.edges
        assert cell.stats.mean >= 0.0

    def test_unprobed_fleet_has_no_depth_cell(self):
        plain = run_fleet(self.SPEC)
        assert QUEUE_DEPTH_CELL not in plain.stats.cells

    def test_engine_counters_summary(self):
        counters = run_fleet(self.SPEC).engine_counters()
        assert counters["events_processed"] > 0
        assert counters["shards"] == self.SPEC.edges
        assert counters["unique_sims"] >= 1

    def test_negative_probe_interval_rejected(self):
        with pytest.raises(ValueError, match="probe_interval_s"):
            FleetSpec(units=40, edges=4, probe_interval_s=-1.0)


class TestContentKeyInertness:
    def test_probe_knob_absent_from_unprobed_shard_specs(self):
        # An unprobed fleet's shard params must not mention probing at
        # all — the knob rides in only when requested, so pre-existing
        # cache entries stay valid.
        from repro.netsim.fleet.engine import shard_specs

        plain, _ = shard_specs(FleetSpec(units=40, edges=4))
        assert all("probe_interval_s" not in s.params for s in plain)
        probed, _ = shard_specs(FleetSpec(units=40, edges=4, probe_interval_s=0.5))
        assert all(s.params["probe_interval_s"] == 0.5 for s in probed)

    def test_probed_and_unprobed_shards_key_apart(self):
        # A probed shard's cached result carries the probe log, so it
        # must not be interchangeable with an unprobed cache entry.
        from repro.netsim.fleet.engine import shard_specs

        plain, _ = shard_specs(FleetSpec(units=40, edges=4))
        probed, _ = shard_specs(FleetSpec(units=40, edges=4, probe_interval_s=0.5))
        assert content_key(plain[0]) != content_key(probed[0])

    def test_new_task_params_all_carry_defaults(self):
        # KEY002's contract for this PR: the tasks grew probe knobs, but
        # only as inert-at-default parameters, so every pre-existing
        # spec (and cache key) is untouched.
        import inspect

        from repro.runner.tasks import fleet_shard_arm, packet_arm

        assert inspect.signature(packet_arm).parameters["probe"].default is None
        assert (
            inspect.signature(fleet_shard_arm).parameters["probe_interval_s"].default
            == 0.0
        )

    def test_sweep_results_unchanged_by_probing(self):
        from repro.netsim.packet.simulation import FlowConfig
        from repro.netsim.packet.sweep import run_packet_sweep

        def factory(i):
            return FlowConfig(flow_id=i)

        kwargs = dict(
            n_units=2,
            treatment_factory=factory,
            control_factory=factory,
            allocations=(0, 2),
            capacity_mbps=10.0,
            duration_s=1.0,
            warmup_s=0.25,
        )
        plain = run_packet_sweep(**kwargs)
        probed = run_packet_sweep(**kwargs, probe=ProbeConfig(interval_s=0.25))
        assert plain.tte("throughput_mbps") == probed.tte("throughput_mbps")
