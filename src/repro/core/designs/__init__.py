"""Experiment designs for congested networks.

Each design describes *how treatment allocation varies over links and days*
(an :class:`~repro.core.designs.base.AllocationPlan`) and *which cells of
the resulting data estimate which causal quantity* (a list of
:class:`~repro.core.designs.base.ComparisonSpec`).

Available designs:

* :class:`~repro.core.designs.ab_test.ABTestDesign` — the naive A/B test.
* :class:`~repro.core.designs.aa_test.AATestDesign` — an A/A calibration test.
* :class:`~repro.core.designs.paired_link.PairedLinkDesign` — the paper's
  Section 4 design: simultaneous 95 % / 5 % A/B tests on two parallel links.
* :class:`~repro.core.designs.switchback.SwitchbackDesign` — randomized
  treatment/control time intervals (Section 5.2).
* :class:`~repro.core.designs.event_study.EventStudyDesign` — a before/after
  deployment comparison (Section 5.1).
* :class:`~repro.core.designs.gradual_deployment.GradualDeploymentDesign` —
  a staged ramp of allocations usable to detect interference.
"""

from repro.core.designs.base import AllocationPlan, ComparisonSpec, ExperimentDesign
from repro.core.designs.ab_test import ABTestDesign
from repro.core.designs.aa_test import AATestDesign
from repro.core.designs.paired_link import PairedLinkDesign
from repro.core.designs.switchback import SwitchbackDesign
from repro.core.designs.event_study import EventStudyDesign
from repro.core.designs.gradual_deployment import GradualDeploymentDesign

__all__ = [
    "AllocationPlan",
    "ComparisonSpec",
    "ExperimentDesign",
    "ABTestDesign",
    "AATestDesign",
    "PairedLinkDesign",
    "SwitchbackDesign",
    "EventStudyDesign",
    "GradualDeploymentDesign",
]
