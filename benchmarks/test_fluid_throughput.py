"""Fluid-steps/sec microbenchmark: vectorized kernels vs scalar references.

One "fluid step" is a :func:`weighted_water_fill` over a fleet-sized edge
population plus the loss kernel over the resulting per-edge rates — the
hybrid's hot inner loop (``repro.netsim.fleet.hybrid`` runs two of these
per fleet, region then backbone).  The vectorized path must show a
measured speedup over the scalar reference; both rates land in the
``BENCH_JSON`` throughput section, from which ``check_regression.py``
renders the speedup/slowdown delta table.
"""

import random
import time

import numpy as np

from _helpers import run_once

from repro.netsim.fluid import (
    loss_probability,
    weighted_water_fill,
    weighted_water_fill_reference,
)

#: Edges in the synthetic fleet the step iterates over.
N_EDGES = 2000

#: Steps timed for the vectorized path.
VECTOR_STEPS = 400

#: Steps timed for the scalar reference (it is orders of magnitude slower).
SCALAR_STEPS = 4


def _fleet_case(seed: int = 0):
    """Deterministic per-edge demands/weights/RTTs for the step benchmark."""
    rng = random.Random(f"fluid-bench:{seed}")
    demands = np.array([rng.uniform(4.0, 64.0) for _ in range(N_EDGES)])
    weights = np.array([float(rng.randint(20, 200)) for _ in range(N_EDGES)])
    rtts = np.array([rng.choice([10.0, 20.0, 40.0, 80.0]) for _ in range(N_EDGES)])
    capacity = 0.6 * float(demands.sum())
    return capacity, demands, weights, rtts


def _steps_per_s(fill, steps: int) -> float:
    """Time ``steps`` fluid steps of the given water-fill implementation."""
    capacity, demands, weights, rtts = _fleet_case()
    start = time.perf_counter()
    for _ in range(steps):
        shares = fill(capacity, demands, weights)
        loss_probability(shares / weights, rtt_ms=rtts, mtu_bytes=1500)
    wall = time.perf_counter() - start
    return steps / wall


def test_fluid_step_vectorized(benchmark, throughput):
    rate = run_once(benchmark, _steps_per_s, weighted_water_fill, VECTOR_STEPS)
    throughput.record_rates(seconds=1.0, steps=rate)


def test_fluid_step_scalar_reference(benchmark, throughput):
    rate = run_once(benchmark, _steps_per_s, weighted_water_fill_reference, SCALAR_STEPS)
    throughput.record_rates(seconds=1.0, steps=rate)


def test_vectorized_speedup_is_at_least_5x():
    """The acceptance bar: the numpy step beats the scalar loop clearly.

    Measured locally at well over 50x for 2000 edges; the 5x floor leaves
    a wide margin for CI jitter.
    """
    scalar = _steps_per_s(weighted_water_fill_reference, SCALAR_STEPS)
    vectorized = _steps_per_s(weighted_water_fill, max(VECTOR_STEPS // 4, 1))
    assert vectorized >= 5.0 * scalar, (
        f"vectorized fluid step only {vectorized / scalar:.1f}x the scalar "
        f"path ({vectorized:,.0f} vs {scalar:,.0f} steps/sec)"
    )
