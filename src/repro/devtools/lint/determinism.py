"""Determinism rules: DET001 (randomness), DET002 (clocks), DET003 (sets).

Bit-identical serial/parallel runs — the runner's core guarantee — hold
only if every simulation result is a pure function of its spec.  These
rules flag the three ways that purity has historically been lost:

* drawing randomness from global, unseeded generators (DET001);
* reading wall clocks inside simulation or runner code (DET002);
* iterating over sets, whose order depends on hash randomisation, when
  assembling results or schedules (DET003).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.base import Diagnostic, Rule, register_rule
from repro.devtools.lint.config import RULE_SCOPES
from repro.devtools.lint.names import dotted_path, import_table
from repro.devtools.lint.walker import FileContext

__all__ = ["UnseededRandomnessRule", "WallClockRule", "UnorderedIterationRule"]

#: Seeded constructors allowed by DET001 when called with arguments.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.SeedSequence",
        "numpy.random.RandomState",
    }
)

#: Wall-clock calls DET002 rejects outright.
_WALL_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register_rule
class UnseededRandomnessRule(Rule):
    """DET001: randomness must flow from seeded generator instances."""

    code = "DET001"
    summary = (
        "unseeded randomness: module-level random.*/np.random.* calls; "
        "use random.Random(seed) / np.random.default_rng(seed)"
    )
    scopes = RULE_SCOPES["DET001"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag calls into the global ``random`` / ``numpy.random`` state."""
        imports = import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = dotted_path(node.func, imports, require_import=True)
            if path is None:
                continue
            if path in _SEEDED_CONSTRUCTORS:
                if node.args or node.keywords:
                    continue  # seeded construction is the approved pattern
                yield self.report(
                    ctx,
                    node,
                    f"`{path}()` without a seed is nondeterministic; pass the "
                    "seed handed down from the spec",
                )
            elif path.startswith("random.") or path.startswith("numpy.random."):
                yield self.report(
                    ctx,
                    node,
                    f"`{path}()` draws from global random state; derive all "
                    "randomness from a seeded random.Random(seed) or "
                    "np.random.default_rng(seed)",
                )


@register_rule
class WallClockRule(Rule):
    """DET002: simulation/runner code must not read wall clocks."""

    code = "DET002"
    summary = "wall-clock read (time.time / datetime.now) inside simulation or runner code"
    scopes = RULE_SCOPES["DET002"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag calls that read host clocks."""
        imports = import_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            path = dotted_path(node.func, imports, require_import=True)
            if path in _WALL_CLOCKS:
                yield self.report(
                    ctx,
                    node,
                    f"`{path}()` reads the wall clock; simulated time must come "
                    "from the event scheduler so results are pure functions of "
                    "the spec",
                )


class _SetIterationVisitor(ast.NodeVisitor):
    """Collects iteration sites whose iterable is an unordered set.

    Tracks, per function scope, local names whose every assignment is a
    set expression, then flags ``for`` loops, comprehensions and
    ``list()``/``tuple()``/``enumerate()``/``iter()`` calls that consume
    an unordered expression directly.
    """

    _MATERIALISERS = frozenset({"list", "tuple", "enumerate", "iter"})

    def __init__(self, rule: UnorderedIterationRule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Diagnostic] = []
        self._scope_stack: list[dict[str, bool]] = [{}]

    # -- scope handling --------------------------------------------------------

    def _enter_scope(self) -> None:
        self._scope_stack.append({})

    def _exit_scope(self) -> None:
        self._scope_stack.pop()

    def _bind(self, name: str, is_set: bool) -> None:
        scope = self._scope_stack[-1]
        # A name stays "set-like" only while every assignment to it is one.
        scope[name] = is_set and scope.get(name, True)

    def _is_set_name(self, name: str) -> bool:
        for scope in reversed(self._scope_stack):
            if name in scope:
                return scope[name]
        return False

    # -- set-expression classification -----------------------------------------

    def _is_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                # dict.keys() order mirrors insertion order, but result
                # assembly must not depend on incidental insertion order;
                # iterate sorted(d) instead.
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_unordered(node.left) or self._is_unordered(node.right)
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        return False

    def _flag(self, node: ast.expr) -> None:
        self.findings.append(
            self.rule.report(
                self.ctx,
                node,
                "iteration over an unordered set (or dict.keys()) can depend "
                "on hash randomisation; wrap the iterable in sorted(...)",
            )
        )

    # -- visitors --------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_unordered(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self._bind(node.target.id, self._is_unordered(node.value))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered(node.iter):
            self._flag(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr) -> None:
        for gen in getattr(node, "generators", []):
            if self._is_unordered(gen.iter):
                self._flag(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a *set* from a set keeps the result unordered; only
        # flag once an ordered sequence is produced from it.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in self._MATERIALISERS
            and node.args
            and self._is_unordered(node.args[0])
        ):
            self._flag(node.args[0])
        self.generic_visit(node)


@register_rule
class UnorderedIterationRule(Rule):
    """DET003: no iteration over unordered sets without ``sorted()``."""

    code = "DET003"
    summary = "iteration over set/dict.keys() without sorted() (hash-randomisation hazard)"
    scopes = RULE_SCOPES["DET003"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag for-loops/comprehensions/materialisers fed by raw sets."""
        visitor = _SetIterationVisitor(self, ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
