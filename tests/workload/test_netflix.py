"""Tests for the paired-link workload generator."""

import numpy as np
import pytest

from repro.core.designs import PairedLinkDesign
from repro.core.designs.base import AllocationPlan
from repro.core.units import SESSION_METRICS
from repro.workload.netflix import DEFAULT_LINK_EFFECTS, PairedLinkWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def small_config():
    return WorkloadConfig(sessions_at_peak=80, n_accounts=500, seed=3)


@pytest.fixture(scope="module")
def workload(small_config):
    return PairedLinkWorkload(small_config)


@pytest.fixture(scope="module")
def experiment_table(workload):
    plan = PairedLinkDesign().allocation_plan((1, 2), (0, 1))
    return workload.generate(plan, (0, 1))


class TestWorkloadConfig:
    def test_defaults_are_valid(self):
        config = WorkloadConfig()
        assert config.capacity_gbps == 100.0
        assert config.concurrency_factor > 0

    def test_concurrency_factor_hits_target_utilization(self):
        config = WorkloadConfig()
        peak_sessions = config.sessions_at_peak * config.demand.peak_relative_demand()
        offered = config.concurrency_factor * peak_sessions * config.uncapped_nominal_mbps
        assert offered / (config.capacity_gbps * 1000) == pytest.approx(
            config.peak_utilization_uncapped
        )

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            WorkloadConfig(sessions_at_peak=0)
        with pytest.raises(ValueError):
            WorkloadConfig(capped_nominal_mbps=10.0, uncapped_nominal_mbps=5.0)
        with pytest.raises(ValueError):
            WorkloadConfig(links=())
        with pytest.raises(ValueError):
            WorkloadConfig(n_accounts=0)

    def test_default_link_effects_match_paper_baseline(self):
        assert DEFAULT_LINK_EFFECTS[1].rebuffer_multiplier == pytest.approx(1.20)
        assert DEFAULT_LINK_EFFECTS[1].bytes_multiplier == pytest.approx(1.05)


class TestOfferedLoad:
    def test_capped_sessions_offer_less_load(self, workload):
        all_uncapped = workload.offered_load_gbps(1000, 0)
        all_capped = workload.offered_load_gbps(0, 1000)
        assert all_capped < all_uncapped
        assert all_capped / all_uncapped == pytest.approx(
            workload.config.capped_nominal_mbps / workload.config.uncapped_nominal_mbps
        )

    def test_peak_hour_is_congested_when_uncapped(self, workload):
        config = workload.config
        peak_sessions = int(config.sessions_at_peak * config.demand.peak_relative_demand())
        state = workload.link_hour_state(peak_sessions, 0)
        assert state.congested

    def test_peak_hour_less_congested_when_mostly_capped(self, workload):
        config = workload.config
        peak_sessions = int(config.sessions_at_peak * config.demand.peak_relative_demand())
        n_capped = int(0.95 * peak_sessions)
        capped_state = workload.link_hour_state(peak_sessions - n_capped, n_capped)
        uncapped_state = workload.link_hour_state(peak_sessions, 0)
        assert capped_state.utilization < uncapped_state.utilization
        assert capped_state.throughput_factor > uncapped_state.throughput_factor


class TestGeneration:
    def test_table_has_expected_columns(self, experiment_table):
        for column in ("session_id", "account_id", "day", "hour", "link", "treated"):
            assert column in experiment_table
        for metric in SESSION_METRICS:
            assert metric in experiment_table

    def test_session_ids_unique(self, experiment_table):
        ids = experiment_table["session_id"]
        assert len(np.unique(ids)) == len(ids)

    def test_both_links_and_days_present(self, experiment_table):
        assert set(experiment_table["link"].astype(int)) == {1, 2}
        assert set(experiment_table["day"].astype(int)) == {0, 1}

    def test_allocation_respected_per_link(self, experiment_table):
        link1 = experiment_table.where(link=1)
        link2 = experiment_table.where(link=2)
        assert link1["treated"].mean() == pytest.approx(0.95, abs=0.03)
        assert link2["treated"].mean() == pytest.approx(0.05, abs=0.03)

    def test_generation_is_reproducible(self, small_config):
        plan = AllocationPlan({}, default=0.5)
        a = PairedLinkWorkload(small_config).generate(plan, (0,))
        b = PairedLinkWorkload(small_config).generate(plan, (0,))
        assert len(a) == len(b)
        assert np.allclose(a["throughput_mbps"], b["throughput_mbps"])

    def test_different_seed_offsets_differ(self, workload):
        plan = AllocationPlan({}, default=0.5)
        a = workload.generate(plan, (0,), seed_offset=1)
        b = workload.generate(plan, (0,), seed_offset=2)
        assert not np.allclose(
            a["throughput_mbps"][: min(len(a), len(b))],
            b["throughput_mbps"][: min(len(a), len(b))],
        )

    def test_baseline_has_no_treated_sessions(self, workload):
        baseline = workload.generate_baseline((0,))
        assert baseline["treated"].sum() == 0

    def test_aa_test_labels_but_does_not_treat(self, workload):
        aa = workload.generate_aa_test((0,), allocation=0.5)
        assert 0.4 < aa["treated"].mean() < 0.6
        treated = aa.where(treated=1)
        control = aa.where(treated=0)
        # No cap applied: bitrates should be statistically indistinguishable.
        assert treated.mean("video_bitrate_kbps") == pytest.approx(
            control.mean("video_bitrate_kbps"), rel=0.05
        )

    def test_interference_mechanism_visible_in_raw_data(self, experiment_table):
        """Control sessions on the mostly-capped link outperform control
        sessions on the mostly-uncapped link (positive spillover)."""
        spill_group = experiment_table.where(link=1, treated=0)
        control_group = experiment_table.where(link=2, treated=0)
        assert spill_group.mean("throughput_mbps") > control_group.mean("throughput_mbps")

    def test_naive_within_link_difference_smaller_than_cross_link_difference(
        self, experiment_table
    ):
        """Within the mostly-uncapped link, capped and uncapped sessions see
        nearly the same throughput (they share the same congestion), while
        the across-link (TTE-style) difference is much larger."""
        link2 = experiment_table.where(link=2)
        naive = abs(
            link2.where(treated=1).mean("throughput_mbps")
            - link2.where(treated=0).mean("throughput_mbps")
        )
        cross_link = abs(
            experiment_table.where(link=1, treated=1).mean("throughput_mbps")
            - link2.where(treated=0).mean("throughput_mbps")
        )
        assert naive < 0.25 * link2.where(treated=0).mean("throughput_mbps")
        assert cross_link > 0.0
