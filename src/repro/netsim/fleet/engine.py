"""The fleet engine: fan shards out, stream statistics back.

``run_fleet`` turns a :class:`~repro.netsim.fleet.spec.FleetSpec` into
one :class:`~repro.runner.spec.ScenarioSpec` per edge (task
``fleet.shard_arm``), runs the fluid coupling passes to fix each shard's
effective capacity / upstream loss / path delay, and fans the shards out
through the existing :class:`~repro.runner.executor.ParallelExecutor` /
``ResultCache`` stack.

Two properties the tests pin:

* **Content-key dedupe.**  Shards with identical parameters (same unit
  count, treatment pattern, RTT band, coupling, derived seed) have
  identical content keys and are simulated once; homogeneous
  granularities (edge/region, and the all-treated / all-control
  counterfactual fleets) collapse from hundreds of simulations to a
  handful, which is what makes counterfactual truth affordable at fleet
  scale.  Results are reused per key, never re-run.
* **Deterministic merge.**  Shard statistics are folded in edge order,
  so the merged result is bit-identical for any ``jobs`` value; each
  shard's seed derives from the master seed and its edge index (and is
  ``None`` when the shard consumes no randomness, maximizing cache
  hits — the packet sweep's seed-normalization idiom).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.netsim.fleet.aggregate import ShardStats, cell_key
from repro.netsim.fleet.hybrid import FleetCoupling, couple_fleet
from repro.netsim.fleet.spec import FleetSpec, fleet_assignment
from repro.runner import ParallelExecutor, ResultCache, ScenarioSpec, content_key

__all__ = ["FleetResult", "run_fleet", "shard_specs"]


@dataclass
class FleetResult:
    """A fleet run reduced to merged sufficient statistics."""

    spec: FleetSpec
    stats: ShardStats
    coupling: FleetCoupling
    #: Distinct shard simulations actually run (after content-key dedupe).
    unique_sims: int

    def mean(self, arm: str, metric: str) -> float:
        """Fleet-wide mean of a per-unit metric in one arm."""
        return self.stats.cell(arm, metric).stats.mean

    def quantile(self, arm: str, metric: str, q: float) -> float:
        """Fleet-wide quantile of a per-unit metric in one arm."""
        return self.stats.cell(arm, metric).sketch.quantile(q)

    def ab_estimate(self, metric: str) -> float:
        """Naive A/B estimate: treated mean minus control mean."""
        return self.mean("treated", metric) - self.mean("control", metric)

    def arm_count(self, arm: str, metric: str = "throughput_mbps") -> int:
        """Units observed in one arm."""
        key = cell_key(arm, metric)
        if key not in self.stats.cells:
            return 0
        return self.stats.cells[key].stats.count

    def engine_counters(self) -> dict[str, int]:
        """Folded engine counters of the fleet, as a flat mapping.

        Counters are folded per *edge* (a deduped shard counts once per
        edge it stands for), so they report the fleet's as-if simulation
        cost, not the cache-reduced cost actually paid — ``unique_sims``
        carries that.
        """
        return {
            "events_processed": self.stats.events_processed,
            "pool_reused": self.stats.pool_reused,
            "sketch_merges": self.stats.sketch_merges,
            "packets": self.stats.packets,
            "shards": self.stats.shards,
            "unique_sims": self.unique_sims,
        }


def _shard_seed(spec: FleetSpec, edge: int, consumes_seed: bool) -> int | None:
    """Derived per-shard seed; ``None`` when the shard draws no randomness.

    Seed-inert shards (no upstream loss, no churn) share content keys
    across edges with identical parameters — the dedupe that makes
    homogeneous fleets cheap.  The string-seeding idiom matches the rest
    of the codebase: cross-platform stable, independent streams per edge.
    """
    if not consumes_seed:
        return None
    return random.Random(f"fleet-shard:{spec.seed}:{edge}").getrandbits(32)


def shard_specs(spec: FleetSpec) -> tuple[list[ScenarioSpec], FleetCoupling]:
    """Build one ``fleet.shard_arm`` scenario spec per edge.

    Runs the treatment assignment and the fluid coupling passes, then
    freezes every edge's parameters into a content-keyable spec.
    """
    masks = fleet_assignment(spec)
    edge_weights = np.array(
        [
            sum(
                spec.treatment_connections if treated else spec.control_connections
                for treated in mask
            )
            for mask in masks
        ],
        dtype=float,
    )
    coupling = couple_fleet(spec, edge_weights)

    specs = []
    for edge in range(spec.edges):
        loss_rate = float(coupling.backbone_loss_rate[edge])
        consumes_seed = loss_rate > 0.0 or spec.churn_per_s > 0.0
        specs.append(
            ScenarioSpec(
                task="fleet.shard_arm",
                params={
                    "treated_mask": masks[edge],
                    "treatment_connections": spec.treatment_connections,
                    "control_connections": spec.control_connections,
                    "capacity_mbps": float(coupling.effective_capacity_mbps[edge]),
                    "rtt_ms": spec.edge_rtt_ms(edge) + float(coupling.extra_rtt_ms[edge]),
                    "loss_rate": loss_rate,
                    "buffer_bdp": spec.buffer_bdp,
                    "duration_s": spec.duration_s,
                    "warmup_s": spec.warmup_s,
                    "churn_per_s": spec.churn_per_s,
                    "sketch_compression": spec.sketch_compression,
                    # Inert-knob rule: probing enters the content key only
                    # when enabled, so probe-free fleets keep their cache.
                    **(
                        {"probe_interval_s": spec.probe_interval_s}
                        if spec.probe_interval_s > 0.0
                        else {}
                    ),
                },
                seed=_shard_seed(spec, edge, consumes_seed),
                label=f"fleet:{spec.granularity}:edge{edge}",
            )
        )
    return specs, coupling


def run_fleet(
    spec: FleetSpec,
    jobs: int = 1,
    cache: ResultCache | None = None,
    executor: ParallelExecutor | None = None,
) -> FleetResult:
    """Run a whole fleet and return its merged statistics.

    Identical shards (by content key) are simulated once and their
    result reused; distinct shards fan out through the executor.  The
    merged result is bit-identical for any ``jobs`` value.
    """
    specs, coupling = shard_specs(spec)
    executor = executor or ParallelExecutor(jobs=jobs, cache=cache)

    unique_specs: list[ScenarioSpec] = []
    key_to_index: dict[str, int] = {}
    edge_keys: list[str] = []
    for shard in specs:
        key = content_key(shard)
        if key not in key_to_index:
            key_to_index[key] = len(unique_specs)
            unique_specs.append(shard)
        edge_keys.append(key)

    results = executor.map(unique_specs)

    merged: ShardStats | None = None
    for key in edge_keys:
        shard_stats = results[key_to_index[key]]
        merged = shard_stats if merged is None else merged.merge(shard_stats)
    assert merged is not None  # spec validation guarantees >= 1 edge

    return FleetResult(
        spec=spec,
        stats=merged,
        coupling=coupling,
        unique_sims=len(unique_specs),
    )
