"""Declarative experiment campaigns: spec, loader, runner, validator.

A campaign file (YAML or JSON) declares a whole experiment matrix —
figures, knob settings, seed grids, sweeps, analysis settings — and this
package compiles it onto the existing runner stack:

* :mod:`repro.campaign.spec` — the frozen :class:`CampaignSpec` /
  :class:`StageSpec` dataclasses and their content keys.
* :mod:`repro.campaign.loader` — strict parsing of campaign files
  (:func:`load_campaign`), with sweep and seed-grid expansion.
* :mod:`repro.campaign.run` — :func:`run_campaign`: dedupe, fan out via
  :class:`~repro.runner.executor.ParallelExecutor`, aggregate cells, and
  write the ``manifest.json`` / ``results.json`` run artifacts.
* :mod:`repro.campaign.validate` — :func:`validate_run`: replay a run
  directory's manifest against the installed package and its results.

The CLI surface is ``repro run campaign.yaml`` and ``repro validate
RUNDIR``; the library surface is re-exported through :mod:`repro.api`.
"""

from repro.campaign.loader import CampaignError, load_campaign, parse_campaign
from repro.campaign.run import (
    MANIFEST_NAME,
    MANIFEST_SCHEMA,
    RESULTS_NAME,
    ArmResult,
    CampaignResult,
    confidence_half_width,
    run_campaign,
    write_run_dir,
)
from repro.campaign.spec import (
    AnalysisSettings,
    CampaignArm,
    CampaignSpec,
    StageSpec,
    figure_is_seeded,
    figure_knobs,
)
from repro.campaign.validate import ValidationReport, validate_run

__all__ = [
    "AnalysisSettings",
    "ArmResult",
    "CampaignArm",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "RESULTS_NAME",
    "StageSpec",
    "ValidationReport",
    "confidence_half_width",
    "figure_is_seeded",
    "figure_knobs",
    "load_campaign",
    "parse_campaign",
    "run_campaign",
    "validate_run",
    "write_run_dir",
]
