"""Allocation sweeps on the packet-level simulator.

Mirrors :func:`repro.netsim.fluid.lab.run_lab_sweep` but drives the
discrete-event simulator instead of the fluid model: for every number of
treated applications from 0 to ``n_units``, run a packet-level simulation
and record each arm's mean throughput and retransmission fraction.  The
result exposes the same :class:`~repro.core.estimands.PotentialOutcomeCurve`
interface, so the causal machinery (TTE, spillover, SUTVA checks) applies
unchanged — this is what the packet-vs-fluid ablation builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable, Mapping, Sequence
from typing import Any

from repro.core.estimands import PotentialOutcomeCurve
from repro.netsim.packet.network import PathConfig, QueueConfig
from repro.netsim.packet.queue import QUEUE_DISCIPLINES
from repro.netsim.packet.simulation import FlowConfig, PacketSimResult
from repro.runner.cache import ResultCache
from repro.runner.executor import ParallelExecutor
from repro.runner.spec import ScenarioSpec

__all__ = ["PacketSweepResult", "run_packet_sweep"]


@dataclass
class PacketSweepResult:
    """Results of a packet-level allocation sweep.

    Attributes
    ----------
    n_units:
        Number of applications in every run.
    results:
        ``results[k]`` is the :class:`PacketSimResult` with ``k`` treated
        applications.
    """

    n_units: int
    results: dict[int, PacketSimResult] = field(default_factory=dict)

    def curve(self, metric: str) -> PotentialOutcomeCurve:
        """Potential-outcome curve for ``throughput_mbps`` or ``retransmit_fraction``."""
        if metric not in ("throughput_mbps", "retransmit_fraction"):
            raise KeyError(
                f"unknown metric {metric!r}; expected 'throughput_mbps' or 'retransmit_fraction'"
            )
        mu_t: dict[float, float] = {}
        mu_c: dict[float, float] = {}
        for k, result in self.results.items():
            p = k / self.n_units
            if metric == "throughput_mbps":
                if k > 0:
                    mu_t[p] = result.group_mean_throughput(True)
                if k < self.n_units:
                    mu_c[p] = result.group_mean_throughput(False)
            else:
                if k > 0:
                    mu_t[p] = result.group_mean_retransmit(True)
                if k < self.n_units:
                    mu_c[p] = result.group_mean_retransmit(False)
        return PotentialOutcomeCurve(metric, mu_t, mu_c)

    def tte(self, metric: str) -> float:
        """Total treatment effect measured by the sweep's endpoints."""
        return self.curve(metric).tte()

    def ab_estimate(self, metric: str, allocation: float) -> float:
        """Naive A/B estimate at an interior allocation."""
        return self.curve(metric).ate(allocation)


def _discipline_consumes_seed(
    discipline: str, params: Mapping[str, Any] | None
) -> bool:
    """Whether the network-level seed reaches this discipline's RNG.

    A seed pinned in the discipline's own params overrides the network
    seed, leaving the latter inert for this queue.
    """
    cls = QUEUE_DISCIPLINES.get(discipline)
    return bool(cls is not None and cls.uses_seed and "seed" not in (params or {}))


def _consumes_seed(
    flows: Sequence[FlowConfig],
    cross_traffic: Sequence[FlowConfig] | None,
    queue_discipline: str,
    queue_params: Mapping[str, Any] | None,
    extra_queues: Sequence[QueueConfig] | None,
    traffic_sources: Sequence[Any] | None = None,
) -> bool:
    """Whether anything in one sweep arm draws from the seeded RNGs."""
    if traffic_sources:
        # Dynamic sources draw arrival times and flow sizes from the seed.
        return True
    for flow in [*flows, *(cross_traffic or ())]:
        if flow.path is not None and flow.path.loss_rate > 0.0:
            return True
    if _discipline_consumes_seed(queue_discipline, queue_params):
        return True
    return any(
        _discipline_consumes_seed(qc.discipline, qc.params)
        for qc in (extra_queues or ())
    )


def run_packet_sweep(
    n_units: int,
    treatment_factory: Callable[[int], FlowConfig],
    control_factory: Callable[[int], FlowConfig],
    allocations: tuple[int, ...] | None = None,
    capacity_mbps: float = 50.0,
    base_rtt_ms: float = 20.0,
    buffer_bdp: float = 1.0,
    duration_s: float = 15.0,
    warmup_s: float = 5.0,
    mss_bytes: int = 1500,
    queue_discipline: str = "droptail",
    queue_params: Mapping[str, Any] | None = None,
    extra_queues: Sequence[QueueConfig] | None = None,
    cross_traffic: Sequence[FlowConfig] | None = None,
    traffic_sources: Sequence[Any] | None = None,
    rtt_ms: Sequence[float] | None = None,
    loss_rate: float = 0.0,
    seed: int | None = None,
    scheduler: str = "auto",
    event_batching: bool = False,
    batch_segments: int = 8,
    probe: Any = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    executor: ParallelExecutor | None = None,
) -> PacketSweepResult:
    """Sweep the number of treated applications on the packet simulator.

    Parameters
    ----------
    n_units:
        Number of applications sharing the bottleneck in every run.
    treatment_factory, control_factory:
        Callables mapping an application id to a treated / control
        :class:`FlowConfig`.  The ``treated`` flag is set by the sweep.
    allocations:
        Which treated counts to simulate (defaults to every value from 0 to
        ``n_units``).  Packet-level runs are much slower than the fluid
        model, so sweeps often simulate only the endpoints and one or two
        interior points.
    capacity_mbps, base_rtt_ms, buffer_bdp, duration_s, warmup_s, mss_bytes:
        Passed to :func:`repro.netsim.packet.simulation.simulate`.  The
        default capacity is scaled down from the paper's 10 Gb/s so the
        simulation finishes quickly; the sharing behaviour is rate-free.
    queue_discipline, queue_params:
        Bottleneck queue discipline (``"droptail"``/``"red"``/``"codel"``/
        ``"fq_codel"``) and its extra parameters, applied to every arm.
    extra_queues:
        Additional named queues (e.g. a parking-lot chain) added to every
        arm; factory-supplied paths may route through them.
    cross_traffic:
        Unmeasured background applications attached to every arm.
    traffic_sources:
        Dynamic :class:`~repro.netsim.traffic.source.TrafficSource`\\ s
        attached to every arm: finite flows spawning and retiring at
        runtime.  Sources consume the seed (arrival times and flow
        sizes), so seeded replications genuinely differ.
    rtt_ms:
        Per-unit RTT profile: unit ``i`` gets ``rtt_ms[i % len(rtt_ms)]``
        unless its factory already set an explicit ``rtt_ms``.  ``None``
        keeps every unit on ``base_rtt_ms``.
    loss_rate:
        Random-loss probability applied to every unit's path.  Composes
        with factory-supplied :class:`PathConfig`\\ s: a factory path that
        left ``loss_rate`` at 0.0 picks up the sweep-level rate, while a
        nonzero factory rate wins.  (A factory cannot pin a single flow
        to *zero* loss inside a lossy sweep — 0.0 is indistinguishable
        from unset.)
    seed:
        Seed for the RED/random-loss RNGs.  Normalized to ``None`` in the
        scenario specs when nothing consumes randomness (no lossy path
        segment and no seed-consuming discipline), mirroring the
        inert-knob rule, so replications of deterministic sweeps share
        one cache entry.
    scheduler:
        Event-scheduler implementation (``"auto"`` (default)/``"heap"``/
        ``"calendar"``).  Order-identical by contract, so results never
        depend on it; like every knob it enters the content key only
        when it deviates from the default.
    event_batching, batch_segments:
        Macro-packet fast path (see
        :func:`repro.netsim.packet.simulation.simulate`).  Batching
        changes the simulated traces (coarser bursts), so when enabled
        both knobs enter the content key — batched and unbatched runs
        must not share cache entries; left off they stay out of the key,
        per the inert-knob rule.
    probe:
        In-sim telemetry (:class:`repro.obs.probe.ProbeConfig`) attached
        to every arm.  Probing never changes results, so like every inert
        knob it enters the content key only when set — but note that a
        probed arm *does* cache separately from an unprobed one, because
        the cached result carries the probe log.
    jobs, cache, executor:
        Arms are independent, so they fan out over a
        :class:`~repro.runner.executor.ParallelExecutor` with ``jobs``
        worker processes (results are identical for any ``jobs``) and an
        optional on-disk result cache.  Passing an ``executor`` overrides
        both.
    """
    if n_units < 1:
        raise ValueError("n_units must be at least 1")
    if allocations is None:
        allocations = tuple(range(n_units + 1))
    for k in allocations:
        if not 0 <= k <= n_units:
            raise ValueError(f"treated count {k} outside [0, {n_units}]")

    # Topology knobs enter the spec only when they deviate from the
    # defaults: an inert knob must stay out of the content key so it
    # cannot split the cache (cf. the CLI's inert ``--quick`` rule).
    extra_params: dict[str, Any] = {}
    if queue_discipline != "droptail":
        extra_params["queue_discipline"] = queue_discipline
    if queue_params:
        extra_params["queue_params"] = dict(queue_params)
    if extra_queues:
        extra_params["extra_queues"] = tuple(extra_queues)
    if cross_traffic:
        extra_params["cross_traffic"] = tuple(cross_traffic)
    if traffic_sources:
        extra_params["traffic_sources"] = tuple(traffic_sources)
    if scheduler != "auto":
        extra_params["scheduler"] = scheduler
    if event_batching:
        # Batching approximates the unbatched traces, so batched and
        # unbatched runs must not share cache entries.
        extra_params["event_batching"] = True
        extra_params["batch_segments"] = int(batch_segments)
    if probe is not None:
        # The simulated outcomes are probe-independent, but the cached
        # result object carries the probe log, so probed runs key apart.
        extra_params["probe"] = probe

    specs: list[ScenarioSpec] = []
    for k in allocations:
        flows: list[FlowConfig] = []
        for i in range(n_units):
            base = treatment_factory(i) if i < k else control_factory(i)
            unit_rtt = base.rtt_ms
            if unit_rtt is None and rtt_ms is not None:
                unit_rtt = float(rtt_ms[i % len(rtt_ms)])
            path = base.path
            if loss_rate > 0.0:
                # Compose with factory paths instead of silently ignoring
                # the sweep-level rate; a nonzero factory rate wins.
                if path is None:
                    path = PathConfig(loss_rate=loss_rate)
                elif path.loss_rate == 0.0:
                    path = replace(path, loss_rate=loss_rate)
            flows.append(
                FlowConfig(
                    flow_id=base.flow_id,
                    cc=base.cc,
                    connections=base.connections,
                    paced=base.paced,
                    ecn=base.ecn,
                    treated=i < k,
                    rtt_ms=unit_rtt,
                    path=path,
                )
            )
        # The seed is inert when no RNG exists to consume it; keep it out
        # of the content key so replications cannot split the cache.
        spec_seed = seed if _consumes_seed(
            flows, cross_traffic, queue_discipline, queue_params, extra_queues,
            traffic_sources,
        ) else None
        specs.append(
            ScenarioSpec(
                task="netsim.packet_arm",
                params={
                    "flows": tuple(flows),
                    "capacity_mbps": capacity_mbps,
                    "base_rtt_ms": base_rtt_ms,
                    "buffer_bdp": buffer_bdp,
                    "duration_s": duration_s,
                    "warmup_s": warmup_s,
                    "mss_bytes": mss_bytes,
                    **extra_params,
                },
                seed=spec_seed,
                label=f"packet_arm[k={int(k)}/{n_units}, {queue_discipline}]",
            )
        )

    executor = executor or ParallelExecutor(jobs=jobs, cache=cache)
    sweep = PacketSweepResult(n_units=n_units)
    for k, result in zip(allocations, executor.map(specs)):
        sweep.results[int(k)] = result
    return sweep
