"""The bottleneck link of the lab testbed.

The paper's lab has a single congestion point: the switch port facing the
receiving server, a 10 Gb/s link with a buffer of one bandwidth-delay
product and roughly 1 ms of base round-trip time.  :class:`BottleneckLink`
captures the static parameters of that bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BottleneckLink", "loss_probability"]

#: Bits per byte, used in BDP calculations.
BITS_PER_BYTE = 8


def loss_probability(
    per_connection_mbps: "float | np.ndarray",
    *,
    rtt_ms: "float | np.ndarray",
    mtu_bytes: "float | np.ndarray",
):
    """Square-root TCP loss-throughput relationship, array-capable.

    A loss-based connection sustaining rate ``r`` over round-trip time
    ``RTT`` with segment size ``S`` requires a loss probability of about
    ``p = 1.5 (S / (RTT r))^2`` (``rate = S/RTT * sqrt(3/2p)`` inverted).
    Accepts scalars or numpy arrays (broadcast together); rates at or
    below zero map to a loss probability of 1, and the result is clipped
    to [0, 1].

    This is the shared kernel behind :func:`repro.netsim.fluid.competition.
    link_loss_rate` (one link, scalar) and the fleet hybrid's backbone
    coupling (thousands of edges, vectorized).
    """
    rate_bps = np.asarray(per_connection_mbps, dtype=float) * 1e6
    rtt_s = np.asarray(rtt_ms, dtype=float) / 1000.0
    segment_bits = np.asarray(mtu_bytes, dtype=float) * BITS_PER_BYTE
    with np.errstate(divide="ignore", invalid="ignore"):
        p = 1.5 * (segment_bits / (rtt_s * rate_bps)) ** 2
    p = np.where(rate_bps > 0.0, np.minimum(p, 1.0), 1.0)
    if p.ndim == 0:
        return float(p)
    return p


@dataclass(frozen=True)
class BottleneckLink:
    """A single bottleneck link shared by all experimental traffic.

    Parameters
    ----------
    capacity_gbps:
        Link capacity in gigabits per second (paper: 10 Gb/s).
    base_rtt_ms:
        Round-trip propagation delay in milliseconds when queues are empty
        (paper: ~1 ms added with ``tc``).
    buffer_bdp:
        Buffer size expressed in bandwidth-delay products (paper: 1 BDP).
    mtu_bytes:
        Maximum transmission unit in bytes (paper: 9000-byte jumbo frames).
    """

    capacity_gbps: float = 10.0
    base_rtt_ms: float = 1.0
    buffer_bdp: float = 1.0
    mtu_bytes: int = 9000

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError("capacity_gbps must be positive")
        if self.base_rtt_ms <= 0:
            raise ValueError("base_rtt_ms must be positive")
        if self.buffer_bdp < 0:
            raise ValueError("buffer_bdp must be non-negative")
        if self.mtu_bytes <= 0:
            raise ValueError("mtu_bytes must be positive")

    @property
    def capacity_mbps(self) -> float:
        """Capacity in megabits per second."""
        return self.capacity_gbps * 1000.0

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product in bytes."""
        return self.capacity_gbps * 1e9 / BITS_PER_BYTE * (self.base_rtt_ms / 1000.0)

    @property
    def bdp_packets(self) -> float:
        """Bandwidth-delay product expressed in MTU-sized packets."""
        return self.bdp_bytes / self.mtu_bytes

    @property
    def buffer_bytes(self) -> float:
        """Buffer size in bytes."""
        return self.buffer_bdp * self.bdp_bytes

    @property
    def max_queueing_delay_ms(self) -> float:
        """Queueing delay when the buffer is full, in milliseconds."""
        if self.capacity_gbps == 0:
            return 0.0
        return self.buffer_bytes * BITS_PER_BYTE / (self.capacity_gbps * 1e9) * 1000.0

    def fair_share_mbps(self, n_flows: int) -> float:
        """Equal-share throughput per flow for ``n_flows`` identical flows."""
        if n_flows <= 0:
            raise ValueError("n_flows must be positive")
        return self.capacity_mbps / n_flows

    def loss_probability(self, per_connection_mbps: float) -> float:
        """Loss probability sustaining the given per-connection rate here.

        Evaluates the square-root TCP loss-throughput relationship with
        this link's RTT and MTU; see :func:`loss_probability`.
        """
        return loss_probability(
            per_connection_mbps, rtt_ms=self.base_rtt_ms, mtu_bytes=self.mtu_bytes
        )
