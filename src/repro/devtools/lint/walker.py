"""File discovery, parsing and suppression handling for the lint engine.

The walker turns paths into :class:`FileContext` objects: the parsed
AST, the file's dotted module name (derived from the enclosing package
chain, so scoped rules know where they are), and the per-line
suppression table parsed from ``# repro-lint: disable=CODE`` comments.

Suppressions are honoured in two positions:

* inline, on the same physical line as the diagnostic::

      treated = set(units)  # repro-lint: disable=DET003  -- membership only

* a standalone comment line immediately above the flagged line, for
  statements that have no room at the end.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FileContext", "collect_files", "load_file", "module_name_for"]

#: Directories never descended into during discovery.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist", ".eggs"})

#: Suppression comment syntax: ``# repro-lint: disable=DET001,KEY001``.
_SUPPRESS_RE = re.compile(r"repro-lint:\s*disable=([A-Za-z0-9_*]+(?:\s*,\s*[A-Za-z0-9_*]+)*)")


@dataclass
class FileContext:
    """One parsed source file, ready for rules to walk.

    Attributes
    ----------
    path:
        Location of the file on disk.
    module:
        Dotted module name (``repro.netsim.packet.queue``) when the file
        sits inside an importable package chain, else ``None``.
    source:
        Raw file contents.
    tree:
        The parsed :class:`ast.Module`.
    suppressions:
        Maps line number to the set of rule codes suppressed on that
        line (``{"*"}`` suppresses every rule).
    """

    path: Path
    module: str | None
    source: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether diagnostics of ``code`` on ``line`` are suppressed."""
        codes = self.suppressions.get(line, frozenset())
        return code in codes or "*" in codes


def module_name_for(path: Path) -> str | None:
    """Dotted module name of ``path``, from its enclosing package chain.

    Walks parent directories while each contains an ``__init__.py``;
    returns ``None`` for files outside any package (fixtures, scripts),
    which scoped rules treat as "check everything".
    """
    path = path.resolve()
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:
        return None
    name = ".".join(parts)
    # A bare non-package file has no dots and no package ancestry.
    return name if (path.parent / "__init__.py").exists() else None


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``*.py`` files.

    Raises ``FileNotFoundError`` for paths that do not exist, so the CLI
    can distinguish usage errors from lint findings.
    """
    files: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in SKIP_DIRS for part in sub.parts):
                    files.add(sub)
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a Python file: {path}")
    return sorted(files)


def _parse_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Extract the per-line suppression table from comment tokens."""
    table: dict[int, set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - parse rejects first
        return {}
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        codes = {c.strip() for c in match.group(1).split(",") if c.strip()}
        line = tok.start[0]
        table.setdefault(line, set()).update(codes)
        # A standalone comment line (nothing before the '#') also covers
        # the next line, so statements can carry a suppression above.
        prefix = tok.line[: tok.start[1]]
        if not prefix.strip():
            table.setdefault(line + 1, set()).update(codes)
    return {line: frozenset(codes) for line, codes in table.items()}


def load_file(path: Path) -> FileContext:
    """Parse ``path`` into a :class:`FileContext`.

    Raises ``SyntaxError`` if the file does not parse; the engine turns
    that into a ``PARSE`` diagnostic rather than crashing the run.
    """
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=path,
        module=module_name_for(path),
        source=source,
        tree=tree,
        suppressions=_parse_suppressions(source),
    )
