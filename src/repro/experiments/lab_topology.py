"""Topology experiments: A/B bias under heterogeneous RTTs and AQM.

The paper's lab experiments measure interference bias on one topology: a
single drop-tail bottleneck with one RTT shared by every flow.  These
experiments re-run the paper's headline treatment (opening a second TCP
connection) on the packet-level simulator while varying the topology
along two axes the testbed could not:

* :func:`run_rtt_experiment` — units sit at *different* RTTs (a spread
  of propagation delays, as in any real access network).  The allocation
  sweep still identifies the naive A/B estimate, the TTE and the
  spillover, so the figure answers: does RTT heterogeneity change the
  bias the paper measured under symmetric RTTs?
* :func:`run_aqm_experiment` — the same sweep under drop-tail and under
  an AQM discipline (CoDel by default).  AQM keeps the standing queue
  short, which changes *how* flows interfere; comparing the bias of the
  naive A/B estimate across disciplines answers: does AQM shrink the A/B
  bias?

Both run every simulation arm through the
:class:`~repro.runner.executor.ParallelExecutor` (``jobs``/``cache``),
so results are deterministic and bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.experiments.lab_common import figure_cells_spec, LabFigure, packet_sweep_to_figure
from repro.runner.spec import ScenarioSpec
from repro.netsim.packet.queue import QUEUE_DISCIPLINES
from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep

__all__ = [
    "DEFAULT_RTT_SPREAD_MS",
    "AqmBiasComparison",
    "run_rtt_experiment",
    "rtt_spec",
    "aqm_spec",
    "run_aqm_experiment",
    "sweep_scale",
]

#: Default per-unit RTT profile (ms): a 8x spread, cycled across units so
#: treated and control arms see the same RTT mix at every allocation.
DEFAULT_RTT_SPREAD_MS: tuple[float, ...] = (10.0, 20.0, 40.0, 80.0)


def sweep_scale(quick: bool) -> dict[str, object]:
    """Sweep sizing: full keeps 8 units and 3 interior points, quick shrinks."""
    if quick:
        return dict(
            n_units=4,
            allocations=(0, 2, 4),
            capacity_mbps=24.0,
            duration_s=6.0,
            warmup_s=2.0,
        )
    return dict(
        n_units=8,
        allocations=(0, 2, 4, 6, 8),
        capacity_mbps=48.0,
        duration_s=10.0,
        warmup_s=3.0,
    )


def run_rtt_experiment(
    rtt_spread_ms: Sequence[float] = DEFAULT_RTT_SPREAD_MS,
    treatment_connections: int = 2,
    control_connections: int = 1,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
) -> LabFigure:
    """A/B bias of the parallel-connections treatment under RTT heterogeneity.

    Unit ``i`` sits at ``rtt_spread_ms[i % len(rtt_spread_ms)]``, so both
    arms contain the full RTT mix at every allocation; everything else
    matches the paper's Figure 2a setup on the packet simulator.

    Parameters
    ----------
    rtt_spread_ms:
        Per-unit RTT profile in milliseconds, cycled across units.
    treatment_connections, control_connections:
        Connections opened by treated / control applications (paper: 2 / 1).
    quick:
        Shrink the sweep (fewer units, shorter runs) for smoke tests.
    jobs, cache:
        Worker processes and optional result cache for the sweep arms.
    """
    if not rtt_spread_ms:
        raise ValueError("rtt_spread_ms must not be empty")
    if treatment_connections < 1 or control_connections < 1:
        raise ValueError("connection counts must be at least 1")
    scale = sweep_scale(quick)
    n_units = scale.pop("n_units")
    sweep = run_packet_sweep(
        n_units,
        treatment_factory=lambda i: FlowConfig(
            i, cc="reno", connections=treatment_connections
        ),
        control_factory=lambda i: FlowConfig(
            i, cc="reno", connections=control_connections
        ),
        rtt_ms=tuple(float(r) for r in rtt_spread_ms),
        jobs=jobs,
        cache=cache,
        **scale,
    )
    spread = "/".join(f"{r:g}" for r in rtt_spread_ms)
    return packet_sweep_to_figure(
        sweep,
        name="topo_rtt",
        description=(
            f"{n_units} applications at heterogeneous RTTs ({spread} ms) using "
            f"{treatment_connections} (treatment) or {control_connections} "
            f"(control) TCP Reno connections on a shared drop-tail bottleneck"
        ),
    )


@dataclass
class AqmBiasComparison:
    """The same allocation sweep under two or more queue disciplines.

    ``figures[d]`` is the :class:`LabFigure` obtained under discipline
    ``d``; :meth:`bias` reduces each to the quantity of interest — how far
    the naive A/B estimate sits from the true total treatment effect.
    """

    figures: dict[str, LabFigure]
    allocation: float = 0.5

    def bias(self, discipline: str, metric: str = "throughput_mbps") -> float:
        """Naive A/B estimate minus the TTE at :attr:`allocation` (per unit)."""
        figure = self.figures[discipline]
        return figure.ab_estimate(metric, self.allocation) - figure.tte(metric)

    def summary_lines(self) -> list[str]:
        """Per-discipline figure summaries plus the bias comparison."""
        lines: list[str] = []
        for discipline, figure in self.figures.items():
            lines.append(f"=== queue discipline: {discipline} ===")
            lines.extend(figure.summary_lines())
        lines.append("")
        lines.append(
            f"A/B-vs-TTE bias at {self.allocation:.0%} allocation (throughput, Mb/s per unit):"
        )
        for discipline in self.figures:
            lines.append(f"  {discipline:>9}: {self.bias(discipline):+.2f}")
        return lines


def run_aqm_experiment(
    disciplines: Sequence[str] = ("droptail", "codel"),
    treatment_connections: int = 2,
    control_connections: int = 1,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
    name: str = "topo_aqm",
) -> AqmBiasComparison:
    """The parallel-connections bias sweep under each queue discipline.

    Parameters
    ----------
    disciplines:
        Queue disciplines to compare (names from
        :data:`repro.netsim.packet.queue.QUEUE_DISCIPLINES`).
    treatment_connections, control_connections:
        Connections opened by treated / control applications (paper: 2 / 1).
    quick:
        Shrink the sweep (fewer units, shorter runs) for smoke tests.
    jobs, cache:
        Worker processes and optional result cache; arms of *all*
        disciplines fan out over the same executor settings.
    name:
        Figure-name prefix (``run_fq_experiment`` reuses this harness
        under the name ``topo_fq``).
    """
    if not disciplines:
        raise ValueError("at least one queue discipline is required")
    unknown = [d for d in disciplines if d not in QUEUE_DISCIPLINES]
    if unknown:
        raise ValueError(
            f"unknown queue discipline(s) {unknown}; "
            f"expected names from {sorted(QUEUE_DISCIPLINES)}"
        )
    figures: dict[str, LabFigure] = {}
    for discipline in disciplines:
        scale = sweep_scale(quick)
        n_units = scale.pop("n_units")
        sweep = run_packet_sweep(
            n_units,
            treatment_factory=lambda i: FlowConfig(
                i, cc="reno", connections=treatment_connections
            ),
            control_factory=lambda i: FlowConfig(
                i, cc="reno", connections=control_connections
            ),
            queue_discipline=discipline,
            # A seed only enters the content key when the discipline
            # draws randomness; for drop-tail/CoDel it stays inert.
            seed=0 if QUEUE_DISCIPLINES[discipline].uses_seed else None,
            jobs=jobs,
            cache=cache,
            **scale,
        )
        figures[discipline] = packet_sweep_to_figure(
            sweep,
            name=f"{name}[{discipline}]",
            description=(
                f"{n_units} applications using {treatment_connections} (treatment) or "
                f"{control_connections} (control) TCP Reno connections on a shared "
                f"{discipline} bottleneck"
            ),
        )
    return AqmBiasComparison(figures=figures)


def rtt_spec(quick: bool = False, label: str | None = None) -> ScenarioSpec:
    """Runner spec for the topo_rtt figure (deterministic, seed-free).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_rtt_experiment`'s scalar cells.
    """
    return figure_cells_spec("topo_rtt", quick=quick, label=label)


def aqm_spec(quick: bool = False, label: str | None = None) -> ScenarioSpec:
    """Runner spec for the topo_aqm figure (deterministic, seed-free).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_aqm_experiment`'s scalar cells.
    """
    return figure_cells_spec("topo_aqm", quick=quick, label=label)
