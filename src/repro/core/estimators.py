"""Estimators for treatment effects from observed experimental data.

The estimands of :mod:`repro.core.estimands` are expectations over the
randomization distribution; an experiment observes a single realization.
This module provides the estimators the paper uses:

* :func:`difference_in_means` — the naive A/B estimator ``tau_hat(p)``,
  with normal-theory confidence intervals using either independent-unit
  or cluster-robust (by account) standard errors.
* :func:`quantile_treatment_effect` — difference in a quantile between
  treatment and control, with a bootstrap confidence interval.
* :func:`relative_effect` — converts absolute effects into the relative
  (percentage) effects the paper reports, normalized against a chosen
  control condition.

The regression-based estimator with hour fixed effects and Newey-West
standard errors (Appendix B) lives in :mod:`repro.core.analysis.regression`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = [
    "EstimateWithCI",
    "DifferenceInMeans",
    "difference_in_means",
    "quantile_treatment_effect",
    "relative_effect",
    "cluster_robust_variance",
]


@dataclass(frozen=True)
class EstimateWithCI:
    """A point estimate with a confidence interval.

    Attributes
    ----------
    estimate:
        The point estimate.
    std_error:
        Standard error of the estimate.
    ci_low, ci_high:
        Bounds of the confidence interval.
    confidence:
        Confidence level (e.g. 0.95).
    n:
        Number of observations (or clusters) behind the estimate.
    """

    estimate: float
    std_error: float
    ci_low: float
    ci_high: float
    confidence: float = 0.95
    n: int = 0

    @property
    def significant(self) -> bool:
        """True when the confidence interval excludes zero."""
        return (self.ci_low > 0.0) or (self.ci_high < 0.0)

    @property
    def width(self) -> float:
        """Width of the confidence interval."""
        return self.ci_high - self.ci_low

    def covers(self, value: float) -> bool:
        """True when ``value`` lies inside the confidence interval."""
        return self.ci_low <= value <= self.ci_high

    def scaled(self, factor: float) -> "EstimateWithCI":
        """Return the estimate multiplied by ``factor`` (CIs scale too)."""
        if factor >= 0:
            low, high = self.ci_low * factor, self.ci_high * factor
        else:
            low, high = self.ci_high * factor, self.ci_low * factor
        return EstimateWithCI(
            self.estimate * factor,
            abs(self.std_error * factor),
            low,
            high,
            self.confidence,
            self.n,
        )


@dataclass(frozen=True)
class DifferenceInMeans:
    """Result of a difference-in-means comparison between two groups."""

    effect: EstimateWithCI
    treatment_mean: float
    control_mean: float
    n_treatment: int
    n_control: int

    @property
    def relative_effect(self) -> float:
        """Effect relative to the control mean (a fraction, not percent)."""
        if self.control_mean == 0.0:
            raise ZeroDivisionError("control mean is zero; relative effect undefined")
        return self.effect.estimate / self.control_mean


def _normal_ci(
    estimate: float, std_error: float, confidence: float, n: int
) -> EstimateWithCI:
    """Build an :class:`EstimateWithCI` from a normal approximation."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be strictly between 0 and 1")
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    return EstimateWithCI(
        estimate=float(estimate),
        std_error=float(std_error),
        ci_low=float(estimate - z * std_error),
        ci_high=float(estimate + z * std_error),
        confidence=confidence,
        n=int(n),
    )


def cluster_robust_variance(
    outcomes: np.ndarray, clusters: np.ndarray
) -> tuple[float, int]:
    """Variance of a group mean with clustering on ``clusters``.

    Sessions from the same account are not independent; the paper's
    account-level analysis aggregates sessions to accounts before computing
    standard errors.  This helper returns the variance of the mean computed
    from cluster means, along with the number of clusters.
    """
    outcomes = np.asarray(outcomes, dtype=float)
    clusters = np.asarray(clusters)
    if outcomes.shape != clusters.shape:
        raise ValueError("outcomes and clusters must have the same shape")
    if outcomes.size == 0:
        raise ValueError("cannot compute variance of an empty group")
    unique = np.unique(clusters)
    cluster_means = np.array(
        [outcomes[clusters == c].mean() for c in unique], dtype=float
    )
    n_clusters = cluster_means.size
    if n_clusters < 2:
        return 0.0, n_clusters
    return float(cluster_means.var(ddof=1) / n_clusters), n_clusters


def difference_in_means(
    treatment_outcomes: np.ndarray,
    control_outcomes: np.ndarray,
    confidence: float = 0.95,
    treatment_clusters: np.ndarray | None = None,
    control_clusters: np.ndarray | None = None,
) -> DifferenceInMeans:
    """The naive A/B estimator: difference of group means.

    Parameters
    ----------
    treatment_outcomes, control_outcomes:
        Per-unit outcomes in each arm.
    confidence:
        Confidence level for the interval (default 95 %, as in the paper).
    treatment_clusters, control_clusters:
        Optional cluster labels (e.g. account ids).  When provided, standard
        errors are computed from cluster means ("account-level" analysis);
        otherwise units are assumed independent.
    """
    t = np.asarray(treatment_outcomes, dtype=float)
    c = np.asarray(control_outcomes, dtype=float)
    if t.size == 0 or c.size == 0:
        raise ValueError("both treatment and control groups must be non-empty")

    t_mean, c_mean = float(t.mean()), float(c.mean())

    if treatment_clusters is not None:
        t_var, t_n = cluster_robust_variance(t, treatment_clusters)
    else:
        t_var = float(t.var(ddof=1) / t.size) if t.size > 1 else 0.0
        t_n = t.size
    if control_clusters is not None:
        c_var, c_n = cluster_robust_variance(c, control_clusters)
    else:
        c_var = float(c.var(ddof=1) / c.size) if c.size > 1 else 0.0
        c_n = c.size

    effect = t_mean - c_mean
    std_error = float(np.sqrt(t_var + c_var))
    ci = _normal_ci(effect, std_error, confidence, t_n + c_n)
    return DifferenceInMeans(
        effect=ci,
        treatment_mean=t_mean,
        control_mean=c_mean,
        n_treatment=int(t.size),
        n_control=int(c.size),
    )


def quantile_treatment_effect(
    treatment_outcomes: np.ndarray,
    control_outcomes: np.ndarray,
    quantile: float = 0.99,
    confidence: float = 0.95,
    n_bootstrap: int = 500,
    seed: int | None = None,
) -> EstimateWithCI:
    """Difference in a quantile between treatment and control.

    The paper notes (Section 2, "Note on averages") that practitioners often
    study quantile treatment effects such as the change in 99th-percentile
    latency.  The point estimate is the difference of empirical quantiles;
    the confidence interval is a percentile bootstrap.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be strictly between 0 and 1")
    t = np.asarray(treatment_outcomes, dtype=float)
    c = np.asarray(control_outcomes, dtype=float)
    if t.size == 0 or c.size == 0:
        raise ValueError("both treatment and control groups must be non-empty")

    point = float(np.quantile(t, quantile) - np.quantile(c, quantile))
    rng = np.random.default_rng(seed)
    draws = np.empty(n_bootstrap, dtype=float)
    for b in range(n_bootstrap):
        tb = rng.choice(t, size=t.size, replace=True)
        cb = rng.choice(c, size=c.size, replace=True)
        draws[b] = np.quantile(tb, quantile) - np.quantile(cb, quantile)
    alpha = 1.0 - confidence
    ci_low = float(np.quantile(draws, alpha / 2.0))
    ci_high = float(np.quantile(draws, 1.0 - alpha / 2.0))
    std_error = float(draws.std(ddof=1)) if n_bootstrap > 1 else 0.0
    return EstimateWithCI(
        estimate=point,
        std_error=std_error,
        ci_low=ci_low,
        ci_high=ci_high,
        confidence=confidence,
        n=int(t.size + c.size),
    )


def relative_effect(estimate: EstimateWithCI, baseline: float) -> EstimateWithCI:
    """Express an absolute effect relative to a baseline mean.

    The paper reports every effect as a percentage of the global control
    condition (the mean over the 95 % control sessions on link 2).  This
    helper divides the estimate and its interval by ``baseline``.
    """
    if baseline == 0.0:
        raise ZeroDivisionError("baseline is zero; relative effect undefined")
    return estimate.scaled(1.0 / baseline)
