"""Section 4.1 — validating that the two links are statistically similar.

Before the main experiment, the paper collects a week of baseline data on
both links and compares 24 metrics.  Most metrics show no significant
difference; link 1 has ~5 % more bytes, ~2 % higher stability, ~0.1 %
lower perceptual quality and ~20 % more rebuffers (believed to be a
content-placement artifact rather than a network difference).

:func:`compare_links_at_baseline` applies the paper's Appendix-B analysis
to baseline data: for each metric it treats "being served by link 1" as
the treatment indicator and estimates the link-1 vs link-2 difference with
hourly aggregation and Newey-West standard errors.
"""

from __future__ import annotations

from repro.experiments.lab_common import figure_cells_spec
from repro.runner.spec import ScenarioSpec

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.analysis.pipeline import AnalysisConfig, MetricEstimate, analyze_metric
from repro.core.units import SESSION_METRICS, OutcomeTable

__all__ = ["LinkComparisonRow", "compare_links_at_baseline", "baseline_spec"]


@dataclass(frozen=True)
class LinkComparisonRow:
    """Baseline difference between link 1 and link 2 for one metric."""

    metric: str
    estimate: MetricEstimate

    @property
    def relative_percent(self) -> float:
        """Link 1 minus link 2, as a percentage of the link-2 mean."""
        return self.estimate.relative_percent

    @property
    def significant(self) -> bool:
        """True when the difference is statistically significant."""
        return self.estimate.relative.significant


def compare_links_at_baseline(
    baseline_table: OutcomeTable,
    link_a: int = 1,
    link_b: int = 2,
    metrics: Sequence[str] = SESSION_METRICS,
    config: AnalysisConfig | None = None,
) -> list[LinkComparisonRow]:
    """Compare two links on baseline (untreated) data.

    Parameters
    ----------
    baseline_table:
        Session table from a period with no treatment anywhere.
    link_a, link_b:
        The links to compare; effects are reported as ``link_a - link_b``
        relative to ``link_b``.
    metrics:
        Metrics to compare (the paper looked at 24; we report the ten
        modelled ones).
    config:
        Analysis configuration (hourly aggregation by default).
    """
    config = config or AnalysisConfig()
    table_a = baseline_table.where(link=link_a)
    table_b = baseline_table.where(link=link_b)
    if len(table_a) == 0 or len(table_b) == 0:
        raise ValueError("baseline data must include sessions on both links")
    rows: list[LinkComparisonRow] = []
    for metric in metrics:
        estimate = analyze_metric(
            table_a,
            table_b,
            metric,
            estimand=f"baseline_link{link_a}_vs_link{link_b}",
            config=config,
        )
        rows.append(LinkComparisonRow(metric=metric, estimate=estimate))
    return rows


def baseline_spec(
    quick: bool = False, seed: int | None = 0, label: str | None = None
) -> ScenarioSpec:
    """Runner spec for the Section 4.1 baseline link-similarity table.

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`compare_links_at_baseline` on the untreated week at one seed.
    """
    return figure_cells_spec("baseline", quick=quick, seed=seed, label=label)
