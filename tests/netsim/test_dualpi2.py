"""Invariant tests for the DualPI2 dual-queue coupled AQM (RFC 9332 style).

The contract: L4S packets land in the low-latency queue and are marked —
by a shallow sojourn step and a probability coupled to classic pressure —
never dropped by the AQM; classic packets face the squared PI2 law; the
two queues share one drain conserving every packet; the classic queue
cannot be starved; and every lottery draw comes from the seed, so a
DualPI2 run is a pure function of its spec.
"""

import pytest

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.queue import QUEUE_DISCIPLINES, DualPI2Queue, make_queue
from repro.netsim.packet.simulation import FlowConfig, simulate


def make_packet(seq, size=1000, flow_id=0, ecn=False, l4s=False):
    return Packet(
        flow_id=flow_id,
        sequence=seq,
        size_bytes=size,
        send_time=0.0,
        ecn_capable=ecn or l4s,
        l4s=l4s,
    )


def build(rate_bps=8_000.0, buffer_bytes=8_000.0, **params):
    sched = EventScheduler()
    departed, dropped = [], []
    queue = make_queue(
        "dualpi2",
        sched,
        rate_bps,
        buffer_bytes,
        on_departure=lambda p, t: departed.append((p.sequence, t)),
        on_drop=lambda p, t: dropped.append((p.sequence, t)),
        **params,
    )
    return sched, queue, departed, dropped


class TestRegistry:
    def test_registered_under_dualpi2(self):
        assert QUEUE_DISCIPLINES["dualpi2"] is DualPI2Queue

    def test_declares_seed_consumption(self):
        # The network builder forwards its seed to seed-consuming
        # disciplines, and the sweep keeps the seed in the content key.
        assert DualPI2Queue.uses_seed is True

    @pytest.mark.parametrize(
        "bad",
        [
            {"target_delay_s": 0.0},
            {"t_update_s": -1.0},
            {"alpha": -0.1},
            {"coupling": 0.0},
            {"step_threshold_s": 0.0},
            {"classic_share_min": 0.0},
            {"classic_share_min": 1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            build(**bad)


class TestConservation:
    def test_mixed_load_conserves_packets_after_drain(self):
        sched, queue, departed, dropped = build(buffer_bytes=4_000.0)
        for i in range(60):
            l4s = i % 2 == 0
            sched.schedule(
                i * 0.04, lambda i=i, l=l4s: queue.enqueue(make_packet(i, l4s=l))
            )
        sched.run(until=1e6)
        assert queue.occupancy_bytes == 0.0
        assert queue.occupancy_packets == 0
        assert queue.packets_served + queue.packets_dropped == queue.packets_offered
        assert len(departed) == queue.packets_served
        assert len(dropped) == queue.packets_dropped
        assert queue.packets_offered == 60

    def test_overflow_drops_are_never_marks(self):
        # A tiny buffer forces hard drops; a dropped packet must not
        # carry CE even though every offered packet is ECN-capable.
        sched = EventScheduler()
        dropped_packets = []
        queue = make_queue(
            "dualpi2",
            sched,
            8_000.0,
            2_000.0,
            on_departure=lambda p, t: None,
            on_drop=lambda p, t: dropped_packets.append(p),
        )
        for i in range(30):
            queue.enqueue(make_packet(i, l4s=True))
        sched.run(until=1e6)
        assert dropped_packets  # the burst overflowed
        assert all(not p.ce_marked for p in dropped_packets)
        assert queue.packets_dropped + queue.packets_served == queue.packets_offered


class TestCouplingLaw:
    def test_probabilities_monotone_in_base_probability(self):
        _, queue, _, _ = build()
        last_classic, last_l4s = -1.0, -1.0
        for p in (0.0, 0.05, 0.1, 0.3, 0.6, 1.0):
            queue._base_p = p
            assert queue.classic_drop_probability() >= last_classic
            assert queue.l4s_mark_probability() >= last_l4s
            last_classic = queue.classic_drop_probability()
            last_l4s = queue.l4s_mark_probability()

    def test_square_law_signals_l4s_before_classic(self):
        # The coupling: L marking = k*p, classic dropping = p^2, so the
        # fine-grained signal always leads the coarse one (p < 1).
        _, queue, _, _ = build()
        for p in (0.01, 0.1, 0.4, 0.9):
            queue._base_p = p
            assert queue.l4s_mark_probability() > queue.classic_drop_probability()

    def test_classic_pressure_raises_l4s_marking(self):
        # With classic backlog persistently above target, the PI law must
        # push p (hence the coupled L marking probability) upward.
        sched, queue, _, _ = build(rate_bps=8_000.0, buffer_bytes=100_000.0)
        for i in range(80):
            sched.schedule(i * 0.01, lambda i=i: queue.enqueue(make_packet(i)))
        sched.run(until=0.9)
        assert queue.base_probability > 0.0
        assert queue.l4s_mark_probability() > 0.0


class TestShallowMarking:
    def test_marking_onset_at_step_threshold(self):
        # Saturate the L queue: sojourn times exceed the shallow step, so
        # (nearly) every served L packet after the first is marked.
        sched, queue, departed, _ = build(
            rate_bps=8_000.0, buffer_bytes=40_000.0, step_threshold_s=0.001
        )
        for i in range(20):
            queue.enqueue(make_packet(i, l4s=True))
        sched.run(until=1e6)
        assert queue.packets_marked_l >= 18  # all but the head-of-line packets
        assert queue.packets_dropped == 0  # marks, never AQM drops, in L

    def test_no_marks_below_step_threshold_when_uncoupled(self):
        # Paced arrivals that never queue: sojourn stays below the step
        # and p stays 0 (no classic pressure), so nothing is marked.
        sched, queue, _, _ = build(rate_bps=80_000.0, step_threshold_s=0.01)
        for i in range(20):
            sched.schedule(i * 0.2, lambda i=i: queue.enqueue(make_packet(i, l4s=True)))
        sched.run(until=1e6)
        assert queue.packets_marked == 0

    def test_l4s_and_classic_marks_attributed_to_their_queues(self):
        sched, queue, _, _ = build(rate_bps=8_000.0, buffer_bytes=40_000.0)
        for i in range(40):
            queue.enqueue(make_packet(i, l4s=i % 2 == 0, ecn=True))
        sched.run(until=1e6)
        assert queue.packets_marked == queue.packets_marked_l + queue.packets_marked_c
        assert queue.packets_marked_l > 0


class TestClassicProtection:
    def test_classic_queue_not_starved_by_l4s_backlog(self):
        # Keep both queues permanently backlogged; the WRR guarantee must
        # hand the classic queue at least (roughly) its minimum share.
        # The classic packets negotiate (classic) ECN so the saturated
        # PI2 law marks rather than drops them — the test isolates the
        # *scheduler*, not the AQM's overload response.
        sched, queue, departed, _ = build(
            rate_bps=80_000.0, buffer_bytes=1e9, classic_share_min=0.05
        )
        for i in range(400):
            queue.enqueue(make_packet(i, l4s=True))
            queue.enqueue(make_packet(1000 + i, ecn=True))
        sched.run(until=10.0)
        classic_served = sum(1 for s, _ in departed if s >= 1000)
        total_served = len(departed)
        assert total_served > 50
        assert classic_served / total_served >= 0.04


class TestDeterminism:
    def _run(self, seed):
        return simulate(
            [FlowConfig(0, ecn="l4s", paced=True), FlowConfig(1, ecn="classic")],
            capacity_mbps=12.0,
            duration_s=4.0,
            warmup_s=1.0,
            queue_discipline="dualpi2",
            seed=seed,
        )

    def test_same_seed_same_results(self):
        a, b = self._run(3), self._run(3)
        for fa, fb in zip(a.flows, b.flows):
            assert fa == fb
        assert a.queue_marks == b.queue_marks
        assert a.total_drops == b.total_drops

    def test_network_seed_reaches_the_lotteries(self):
        # Different seeds must be able to produce different outcomes:
        # the mark/drop lotteries genuinely consume the seed.
        baseline = self._run(3)
        assert any(
            self._run(seed).flows != baseline.flows for seed in (4, 5, 6)
        )

    def test_dropped_classic_packets_buy_no_l4s_credit(self):
        # Non-ECN classic packets under a saturated PI2 law are dropped
        # at dequeue; those drops must not grant the L queue WRR credit,
        # or the classic share guarantee would erode by the drop rate.
        # With every classic packet dropped, credit only ever decreases,
        # so after the L backlog drains it cannot have gone positive.
        sched, queue, departed, dropped = build(
            rate_bps=80_000.0, buffer_bytes=1e9, classic_share_min=0.05
        )
        queue._base_p = 1.0  # saturated: classic drop probability 1
        queue._alpha = queue._beta = 0.0  # freeze the controller
        for i in range(50):
            queue.enqueue(make_packet(i, l4s=True))
            queue.enqueue(make_packet(1000 + i))
        sched.run(until=10.0)
        assert len(dropped) > 0
        assert queue._wrr_credit <= 0.0
