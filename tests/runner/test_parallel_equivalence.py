"""Parallel execution must be bit-identical to the serial path.

Every sweep derives its randomness from per-arm seeds, so fanning arms
out over worker processes cannot change any result.  These tests assert
exact equality (not approximate) between ``jobs=1`` and ``jobs>1`` for
the packet sweep, the fluid lab sweep and the paired-link experiment.
"""

import numpy as np
import pytest

from repro.experiments import PairedLinkExperiment
from repro.netsim.fluid.application import Application
from repro.netsim.fluid.lab import run_lab_sweep
from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep
from repro.workload import WorkloadConfig

PACKET_KWARGS = dict(
    allocations=(0, 2, 4),
    capacity_mbps=20.0,
    duration_s=6.0,
    warmup_s=2.0,
)


def _packet_sweep(jobs):
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
        control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
        jobs=jobs,
        **PACKET_KWARGS,
    )


class TestPacketSweepParallel:
    def test_jobs4_equals_serial(self):
        serial = _packet_sweep(jobs=1)
        parallel = _packet_sweep(jobs=4)
        assert sorted(serial.results) == sorted(parallel.results)
        for k in serial.results:
            assert serial.results[k] == parallel.results[k]

    def test_curves_identical(self):
        serial = _packet_sweep(jobs=1)
        parallel = _packet_sweep(jobs=4)
        for metric in ("throughput_mbps", "retransmit_fraction"):
            assert serial.tte(metric) == parallel.tte(metric)


class TestTopologySweepParallel:
    """jobs=1 vs jobs=4 must stay byte-identical for every new topology knob."""

    def _topology_sweep(self, jobs):
        # Exercises all three new axes at once: AQM discipline, per-unit
        # RTT spread and a random-loss segment (seeded).
        return run_packet_sweep(
            4,
            treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
            control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
            queue_discipline="codel",
            rtt_ms=(10.0, 30.0),
            loss_rate=0.005,
            seed=5,
            jobs=jobs,
            **PACKET_KWARGS,
        )

    def test_jobs4_equals_serial(self):
        serial = self._topology_sweep(jobs=1)
        parallel = self._topology_sweep(jobs=4)
        assert sorted(serial.results) == sorted(parallel.results)
        for k in serial.results:
            assert serial.results[k] == parallel.results[k]

    def test_red_sweep_jobs4_equals_serial(self):
        def sweep(jobs):
            return run_packet_sweep(
                4,
                treatment_factory=lambda i: FlowConfig(i, connections=2),
                control_factory=lambda i: FlowConfig(i),
                queue_discipline="red",
                queue_params={"weight": 0.05},
                seed=11,
                jobs=jobs,
                **PACKET_KWARGS,
            )

        serial, parallel = sweep(1), sweep(4)
        for k in serial.results:
            assert serial.results[k] == parallel.results[k]

    def test_topology_figure_cells_jobs4_equals_serial(self):
        from repro.runner import ParallelExecutor, ScenarioSpec

        specs = [
            ScenarioSpec(
                task="figure.cells",
                params={"figure": figure, "quick": True},
                seed=0,
            )
            for figure in ("topo_rtt", "topo_aqm")
        ]
        serial = ParallelExecutor(jobs=1).map(specs)
        parallel = ParallelExecutor(jobs=4).map(specs)
        assert serial == parallel


class TestChurnSweepParallel:
    """Dynamic traffic draws all randomness from the spec seed, so
    worker fan-out cannot perturb churn results either."""

    def _churn_sweep(self, jobs):
        from repro.netsim.traffic import ParetoSizes, PoissonArrivals, TrafficSource

        source = TrafficSource(
            arrivals=PoissonArrivals(4.0),
            sizes=ParetoSizes(40_000.0, 1.5),
            label="churn",
        )
        return run_packet_sweep(
            4,
            treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
            control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
            traffic_sources=(source,),
            seed=13,
            jobs=jobs,
            **PACKET_KWARGS,
        )

    def test_jobs4_equals_serial(self):
        serial = self._churn_sweep(jobs=1)
        parallel = self._churn_sweep(jobs=4)
        assert sorted(serial.results) == sorted(parallel.results)
        for k in serial.results:
            assert serial.results[k] == parallel.results[k]
            assert serial.results[k].traffic == parallel.results[k].traffic


class TestFluidSweepParallel:
    def _sweep(self, jobs):
        return run_lab_sweep(
            6,
            treatment_factory=lambda i: Application(i, cc="reno", connections=2),
            control_factory=lambda i: Application(i, cc="reno", connections=1),
            noise=0.05,
            seed=11,
            jobs=jobs,
        )

    def test_jobs3_equals_serial_with_noise(self):
        serial = self._sweep(jobs=1)
        parallel = self._sweep(jobs=3)
        assert sorted(serial.results) == sorted(parallel.results)
        for k in serial.results:
            assert serial.results[k] == parallel.results[k]


class TestPairedLinkParallel:
    @pytest.fixture(scope="class")
    def outcomes(self):
        config = WorkloadConfig(sessions_at_peak=100, n_accounts=1500, seed=5)
        serial = PairedLinkExperiment(config=config).run(jobs=1)
        parallel = PairedLinkExperiment(config=config).run(jobs=3)
        return serial, parallel

    def test_tables_identical(self, outcomes):
        serial, parallel = outcomes
        for name in ("baseline_table", "experiment_table", "aa_table"):
            a, b = getattr(serial, name), getattr(parallel, name)
            assert a.column_names == b.column_names
            for column in a.column_names:
                assert np.array_equal(a[column], b[column])

    def test_estimates_identical(self, outcomes):
        serial, parallel = outcomes
        for estimand, per_metric in serial.estimates.items():
            for metric, estimate in per_metric.items():
                assert (
                    estimate.relative_percent
                    == parallel.estimates[estimand][metric].relative_percent
                )


class TestSweepCaching:
    def test_cached_rerun_matches_fresh_run(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        kwargs = dict(
            treatment_factory=lambda i: Application(i, cc="reno", paced=True),
            control_factory=lambda i: Application(i, cc="reno", paced=False),
            noise=0.02,
            seed=3,
        )
        fresh = run_lab_sweep(4, cache=cache, **kwargs)
        assert cache.hits == 0
        cached = run_lab_sweep(4, cache=cache, **kwargs)
        assert cache.hits == 5  # one per allocation 0..4
        for k in fresh.results:
            assert fresh.results[k] == cached.results[k]
