"""Glue between experiment designs, observed data and the analysis pipeline.

An :class:`ExperimentResult` holds the session-level outcomes of a run
together with the design that produced them.  :func:`evaluate_design`
applies every comparison declared by the design to every requested metric,
producing a table of :class:`~repro.core.analysis.pipeline.MetricEstimate`
objects — the rows of the paper's Figures 5 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.analysis.pipeline import AnalysisConfig, MetricEstimate, analyze_metric
from repro.core.designs.base import CellSelector, ComparisonSpec, ExperimentDesign
from repro.core.units import SESSION_METRICS, OutcomeTable

__all__ = ["ExperimentResult", "select_cells", "evaluate_design", "evaluate_comparisons"]


def select_cells(table: OutcomeTable, selector: CellSelector) -> OutcomeTable:
    """Return the subset of sessions matched by a :class:`CellSelector`."""
    mask = np.ones(len(table), dtype=bool)
    if selector.links is not None:
        mask &= np.isin(table["link"].astype(int), np.array(selector.links, dtype=int))
    if selector.days is not None:
        mask &= np.isin(table["day"].astype(int), np.array(selector.days, dtype=int))
    if selector.treated is not None:
        mask &= table["treated"].astype(bool) == selector.treated
    return table.select(mask)


@dataclass
class ExperimentResult:
    """Observed outcomes of one experiment run.

    Attributes
    ----------
    design:
        The design that generated the allocation.
    table:
        Session-level outcomes (must contain ``link``, ``day``, ``hour``,
        ``treated`` and the outcome metrics).
    links, days:
        The links and days covered by the run.
    """

    design: ExperimentDesign
    table: OutcomeTable
    links: tuple[int, ...]
    days: tuple[int, ...]

    def comparisons(self) -> list[ComparisonSpec]:
        """Comparisons declared by the design over this run's links and days."""
        return self.design.comparisons(self.links, self.days)


def evaluate_comparisons(
    table: OutcomeTable,
    comparisons: Iterable[ComparisonSpec],
    metrics: Sequence[str] = SESSION_METRICS,
    baselines: dict[str, float] | None = None,
    config: AnalysisConfig | None = None,
) -> dict[str, dict[str, MetricEstimate]]:
    """Apply each comparison to each metric.

    Parameters
    ----------
    table:
        Session-level outcomes.
    comparisons:
        The comparisons (estimands) to evaluate.
    metrics:
        Outcome metrics to analyze (defaults to all session metrics).
    baselines:
        Optional per-metric normalization baselines (the paper normalizes
        everything by the global control mean).  When omitted, each
        comparison normalizes by its own control group's mean.
    config:
        Analysis configuration.

    Returns
    -------
    dict
        ``result[estimand][metric]`` is a :class:`MetricEstimate`.
    """
    config = config or AnalysisConfig()
    results: dict[str, dict[str, MetricEstimate]] = {}
    for spec in comparisons:
        treated = select_cells(table, spec.treatment_selector)
        control = select_cells(table, spec.control_selector)
        if len(treated) == 0 or len(control) == 0:
            raise ValueError(
                f"comparison {spec.estimand!r} selected an empty group "
                f"(treated={len(treated)}, control={len(control)})"
            )
        per_metric: dict[str, MetricEstimate] = {}
        for metric in metrics:
            baseline = (baselines or {}).get(metric)
            per_metric[metric] = analyze_metric(
                treated, control, metric, spec.estimand, baseline=baseline, config=config
            )
        results[spec.estimand] = per_metric
    return results


def evaluate_design(
    result: ExperimentResult,
    metrics: Sequence[str] = SESSION_METRICS,
    baselines: dict[str, float] | None = None,
    config: AnalysisConfig | None = None,
) -> dict[str, dict[str, MetricEstimate]]:
    """Evaluate every comparison a design declares on the observed data."""
    return evaluate_comparisons(
        result.table, result.comparisons(), metrics=metrics, baselines=baselines, config=config
    )
