"""Composable network model: paths, queues and the topology builder.

The original harness hard-coded one drop-tail bottleneck and one
symmetric RTT shared by every flow.  This module decomposes that
topology into parts that can be recombined:

* :class:`PathConfig` — the route one application's packets take: a
  per-flow one-way propagation profile (``rtt_ms``), an optional
  random-loss segment (``loss_rate``, losses independent of congestion,
  as on an impaired link), and an ordered sequence of named bottleneck
  queues.
* :class:`QueueConfig` — a declarative, content-keyable description of
  one named queue, so sweeps can ship whole topologies through the
  runner (:func:`parking_lot_queues` builds the classic multi-bottleneck
  chain; :func:`parking_lot_path` routes a flow across a span of it).
* :class:`Network` — the builder that wires TCP senders, paths and
  queue disciplines through one :class:`~repro.netsim.packet.engine.EventScheduler`
  and assembles the per-application results.  Beyond measured flows it
  accepts *cross traffic* (:meth:`Network.add_cross_traffic`): flows
  that compete in the queues but are excluded from the results, like
  the unmeasured background traffic of any real network.

For the default configuration — a single drop-tail ``"bottleneck"``
queue, no loss segment, every flow on the network RTT — the builder
produces an event sequence identical to the historical single-link
harness, so :func:`repro.netsim.packet.simulation.simulate` remains
byte-for-byte reproducible (asserted by the golden-output test).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.netsim.packet.engine import make_scheduler
from repro.netsim.packet.packets import Packet, PacketPool
from repro.netsim.packet.queue import QUEUE_DISCIPLINES, QueueDiscipline, make_queue
from repro.netsim.packet.tcp import make_sender
from repro.netsim.packet.tcp.base import TcpSender
from repro.obs.metrics import EngineCounters
from repro.obs.probe import Probe, ProbeConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.netsim.packet.simulation import FlowConfig, PacketSimResult
    from repro.netsim.traffic.source import TrafficSource

__all__ = [
    "DEFAULT_QUEUE",
    "DYNAMIC_UNIT_BASE",
    "PathConfig",
    "QueueConfig",
    "Network",
    "parking_lot_queues",
    "parking_lot_path",
]

#: Name of the bottleneck queue every flow crosses unless its path says otherwise.
DEFAULT_QUEUE = "bottleneck"

#: Unit-id offset of dynamically spawned flows.  Each dynamic flow is its
#: own experimental unit (its own FQ-CoDel sub-queue); the offset keeps
#: those unit ids clear of any measured or cross-traffic application id.
DYNAMIC_UNIT_BASE = 1_000_000


@dataclass(frozen=True)
class PathConfig:
    """The network path of one application's packets.

    Attributes
    ----------
    rtt_ms:
        Two-way propagation delay of this path, excluding queueing.
        ``None`` inherits the network's base RTT.
    loss_rate:
        Probability that a packet is lost on an impaired segment before
        reaching the first queue.  These losses are independent of
        congestion (cf. corruption losses on a degraded link).
    queues:
        Names of the bottleneck queues the path crosses, in order.  Every
        name must exist on the :class:`Network` the flow is attached to.
    """

    rtt_ms: float | None = None
    loss_rate: float = 0.0
    queues: tuple[str, ...] = (DEFAULT_QUEUE,)

    def __post_init__(self) -> None:
        if self.rtt_ms is not None and self.rtt_ms <= 0:
            raise ValueError("rtt_ms must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if not self.queues:
            raise ValueError("a path must cross at least one queue")
        if len(set(self.queues)) != len(self.queues):
            # Routing is by queue name, so a path may visit each queue once.
            raise ValueError(f"path queues must be distinct, got {self.queues}")


@dataclass(frozen=True)
class QueueConfig:
    """Declarative description of one named bottleneck queue.

    The picklable, content-keyable counterpart of
    :meth:`Network.add_queue`, so whole topologies (extra queues beyond
    the default bottleneck) can travel inside a
    :class:`~repro.runner.spec.ScenarioSpec`.

    Attributes
    ----------
    name:
        Queue name paths refer to.
    capacity_mbps:
        Drain rate in Mb/s.
    buffer_bytes, buffer_bdp:
        Buffer size, directly or in bandwidth-delay products of this
        queue's capacity and the network's base RTT.  At most one may be
        set; with neither, one BDP is used.
    discipline:
        Queue discipline registry name.
    params:
        Extra discipline constructor parameters.
    """

    name: str
    capacity_mbps: float
    buffer_bytes: float | None = None
    buffer_bdp: float | None = None
    discipline: str = "droptail"
    # Mapping default is deliberate: params are canonicalised by
    # content_key and only ever read (dict(params) at queue build time).
    params: Mapping[str, Any] = field(default_factory=dict)  # repro-lint: disable=KEY001

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ValueError("capacity_mbps must be positive")
        if self.buffer_bytes is not None and self.buffer_bdp is not None:
            raise ValueError("specify at most one of buffer_bytes / buffer_bdp")


#: Name prefix of the bottleneck segments built by :func:`parking_lot_queues`.
SEGMENT_PREFIX = "seg"


def parking_lot_queues(
    n_segments: int,
    capacity_mbps: float | None = None,
    *,
    capacities: Sequence[float] | None = None,
    buffer_bdp: float = 1.0,
    discipline: str = "droptail",
    params: Mapping[str, Any] | None = None,
) -> tuple[QueueConfig, ...]:
    """Queue configs for a parking-lot topology: ``n_segments`` bottlenecks
    in series, named ``seg0 .. seg{n-1}``.

    Flows cross a contiguous span of segments (:func:`parking_lot_path`);
    flows on overlapping spans contend directly, and spillover propagates
    along the chain between flows that share no segment at all.

    Segment capacities come either from the scalar ``capacity_mbps``
    (every segment identical, the classic symmetric lot) or from
    ``capacities`` — one value per segment, so the chain can carry a
    single binding bottleneck that *migrates* when the allocation of
    traffic across spans shifts.  Exactly one of the two must be given.
    """
    if n_segments < 2:
        raise ValueError("a parking lot needs at least 2 segments")
    if (capacity_mbps is None) == (capacities is None):
        raise ValueError("specify exactly one of capacity_mbps / capacities")
    if capacities is None:
        capacities = [float(capacity_mbps)] * n_segments
    else:
        capacities = [float(c) for c in capacities]
        if len(capacities) != n_segments:
            raise ValueError(
                f"capacities must list one value per segment: expected "
                f"{n_segments}, got {len(capacities)}"
            )
        if any(c <= 0 for c in capacities):
            raise ValueError("segment capacities must be positive")
    return tuple(
        QueueConfig(
            name=f"{SEGMENT_PREFIX}{i}",
            capacity_mbps=capacities[i],
            buffer_bdp=buffer_bdp,
            discipline=discipline,
            params=dict(params or {}),
        )
        for i in range(n_segments)
    )


def parking_lot_path(
    start_segment: int,
    n_segments: int,
    span: int = 2,
    *,
    rtt_ms: float | None = None,
    loss_rate: float = 0.0,
) -> PathConfig:
    """Path crossing ``span`` consecutive parking-lot segments.

    The span starts at ``start_segment``, clamped so it stays on the
    chain (``start_segment >= n_segments - span`` routes through the last
    ``span`` segments).  ``span=1`` gives the classic short flow crossing
    a single segment (cross traffic); the default 2 makes neighbouring
    spans overlap so spillover propagates.
    """
    if not 1 <= span <= n_segments:
        raise ValueError("span must be in [1, n_segments]")
    if start_segment < 0:
        raise ValueError("start_segment must be non-negative")
    start = min(start_segment, n_segments - span)
    return PathConfig(
        rtt_ms=rtt_ms,
        loss_rate=loss_rate,
        queues=tuple(f"{SEGMENT_PREFIX}{j}" for j in range(start, start + span)),
    )


class Network:
    """Builder wiring senders, paths and queues through one scheduler.

    Parameters
    ----------
    capacity_mbps:
        Capacity of the default ``"bottleneck"`` queue, in Mb/s.
    base_rtt_ms:
        Two-way propagation delay flows inherit when their config does
        not carry its own ``rtt_ms``; also sizes the default buffer.
    buffer_bdp:
        Default queue's buffer in bandwidth-delay products of
        (``capacity_mbps``, ``base_rtt_ms``).
    mss_bytes:
        Segment size used by every sender.
    queue_discipline:
        Discipline of the default queue (``"droptail"``, ``"red"``,
        ``"codel"``).
    queue_params:
        Extra constructor parameters for the default queue's discipline.
    seed:
        Seed of the random-loss RNG (``None`` means 0), also forwarded to
        queue disciplines with an internal RNG (RED) unless
        ``queue_params`` pins its own ``seed``.  Inert when no path has a
        loss segment and the discipline draws no randomness.
    scheduler:
        Event-scheduler implementation: ``"auto"`` (default — the
        calendar queue when the event horizon, one base RTT at MSS
        serialization ticks, fits its geometry; the heap otherwise; see
        :func:`repro.netsim.packet.engine.make_scheduler`), ``"heap"``
        or ``"calendar"``.  Both schedulers deliver the identical event
        order, so this knob never changes results, only speed.
    event_batching:
        Default-off fast path: when True, senders coalesce up to
        ``batch_segments`` MSS segments into one macro-packet, so a
        window of k segments costs O(k / batch) scheduler events.
        Results are *approximately* equal to the unbatched run (same
        steady-state rates, coarser burst granularity); leave it off
        whenever bit-exact traces matter.  See ``docs/performance.md``.
    batch_segments:
        Macro-packet size cap, in segments, when ``event_batching`` is
        on (default 8); inert otherwise.
    """

    def __init__(
        self,
        *,
        capacity_mbps: float = 100.0,
        base_rtt_ms: float = 20.0,
        buffer_bdp: float = 1.0,
        mss_bytes: int = 1500,
        queue_discipline: str = "droptail",
        queue_params: dict[str, Any] | None = None,
        seed: int | None = None,
        scheduler: str = "auto",
        event_batching: bool = False,
        batch_segments: int = 8,
    ):
        if capacity_mbps <= 0:
            raise ValueError("capacity_mbps must be positive")
        if base_rtt_ms <= 0:
            raise ValueError("base_rtt_ms must be positive")
        if batch_segments < 1:
            raise ValueError("batch_segments must be at least 1")
        self.capacity_mbps = float(capacity_mbps)
        self.base_rtt_ms = float(base_rtt_ms)
        self.mss_bytes = int(mss_bytes)
        # Calendar geometry: one bucket per MSS serialization time at the
        # default bottleneck, a horizon of one base RTT (where nearly all
        # pending events live at steady state).
        self.scheduler = make_scheduler(
            scheduler,
            horizon_s=self.base_rtt_ms / 1000.0,
            bucket_s=self.mss_bytes * 8.0 / (self.capacity_mbps * 1e6),
        )
        self.event_batching = bool(event_batching)
        self._batch_segments = int(batch_segments) if self.event_batching else 1
        self._pool = PacketPool()
        self._seed = 0 if seed is None else int(seed)
        self._rng = random.Random(self._seed)

        self._queues: dict[str, QueueDiscipline] = {}
        self._senders: dict[int, TcpSender] = {}
        self._connection_owner: dict[int, int] = {}
        self._routes: dict[int, tuple[str, ...]] = {}
        self._rtt_s: dict[int, float] = {}
        self._loss_rate: dict[int, float] = {}
        self._flow_configs: list[FlowConfig] = []
        self._cross_flow_ids: set[int] = set()
        self._next_connection = 0

        #: Dynamic traffic: declarative sources and, per source index,
        #: the senders spawned from it (in spawn order).
        self._traffic_sources: list[TrafficSource] = []
        self._dynamic_senders: dict[int, list[TcpSender]] = {}

        #: Packets lost on impaired path segments (not queue drops).
        self.random_losses = 0

        rate_bps = self.capacity_mbps * 1e6
        bdp_bytes = rate_bps / 8.0 * self.base_rtt_ms / 1000.0
        self.add_queue(
            DEFAULT_QUEUE,
            capacity_mbps=capacity_mbps,
            buffer_bytes=max(buffer_bdp * bdp_bytes, 2 * self.mss_bytes),
            discipline=queue_discipline,
            **(queue_params or {}),
        )

    # -- topology -------------------------------------------------------------

    @property
    def queues(self) -> dict[str, QueueDiscipline]:
        """The network's queues by name (read-only view by convention)."""
        return self._queues

    def add_queue(
        self,
        name: str,
        *,
        capacity_mbps: float,
        buffer_bytes: float | None = None,
        buffer_bdp: float | None = None,
        discipline: str = "droptail",
        **params: Any,
    ) -> QueueDiscipline:
        """Add a named bottleneck queue flows can route through.

        The buffer is given either directly (``buffer_bytes``) or in
        bandwidth-delay products of this queue's capacity and the
        network's base RTT (``buffer_bdp``).
        """
        if name in self._queues:
            raise ValueError(f"queue {name!r} already exists")
        if (buffer_bytes is None) == (buffer_bdp is None):
            raise ValueError("specify exactly one of buffer_bytes / buffer_bdp")
        rate_bps = float(capacity_mbps) * 1e6
        if buffer_bytes is None:
            bdp = rate_bps / 8.0 * self.base_rtt_ms / 1000.0
            buffer_bytes = max(buffer_bdp * bdp, 2 * self.mss_bytes)
        cls = QUEUE_DISCIPLINES.get(discipline, QueueDiscipline)
        if cls.uses_seed:
            params.setdefault("seed", self._seed)
        if cls.uses_flow_key:
            # Fair-queueing sub-queues isolate experimental units: all of
            # an application's connections share one sub-queue, so opening
            # more of them cannot buy a larger share (per-user FQ).
            params.setdefault("flow_key", self._packet_unit)
        queue = make_queue(
            discipline,
            self.scheduler,
            rate_bps,
            buffer_bytes,
            self._departure_handler(name),
            self._drop_handler(),
            **params,
        )
        self._queues[name] = queue
        return queue

    def add_queue_config(self, config: QueueConfig) -> QueueDiscipline:
        """Add a queue from its declarative :class:`QueueConfig` form."""
        buffer_kwargs: dict[str, float] = {}
        if config.buffer_bytes is not None:
            buffer_kwargs["buffer_bytes"] = config.buffer_bytes
        else:
            buffer_kwargs["buffer_bdp"] = (
                config.buffer_bdp if config.buffer_bdp is not None else 1.0
            )
        return self.add_queue(
            config.name,
            capacity_mbps=config.capacity_mbps,
            discipline=config.discipline,
            **buffer_kwargs,
            **dict(config.params),
        )

    def _packet_unit(self, packet: Packet) -> int:
        """The experimental unit (application id) a packet belongs to."""
        return self._connection_owner.get(packet.flow_id, packet.flow_id)

    def add_flow(self, config: FlowConfig) -> None:
        """Attach one application: its connections, path and queues."""
        if any(config.flow_id == f.flow_id for f in self._flow_configs):
            raise ValueError(f"flow id {config.flow_id} already attached")
        path = config.path if config.path is not None else PathConfig()
        for name in path.queues:
            if name not in self._queues:
                raise KeyError(
                    f"flow {config.flow_id} routes through unknown queue {name!r}; "
                    f"known queues: {sorted(self._queues)}"
                )
        rtt_ms = config.rtt_ms if config.rtt_ms is not None else path.rtt_ms
        rtt_s = (rtt_ms if rtt_ms is not None else self.base_rtt_ms) / 1000.0
        for _ in range(config.connections):
            cid = self._next_connection
            self._next_connection += 1
            sender = make_sender(
                config.cc,
                cid,
                self.scheduler,
                self._ingress,
                mss_bytes=self.mss_bytes,
                base_rtt_s=rtt_s,
                paced=config.paced,
                ecn=config.ecn,
                transfer_bytes=config.transfer_bytes,
                batch_segments=self._batch_segments,
                pool=self._pool,
            )
            self._senders[cid] = sender
            self._connection_owner[cid] = config.flow_id
            self._routes[cid] = path.queues
            self._rtt_s[cid] = rtt_s
            self._loss_rate[cid] = path.loss_rate
        self._flow_configs.append(config)

    def add_cross_traffic(self, config: FlowConfig) -> None:
        """Attach an unmeasured background application.

        Cross traffic competes in the queues exactly like a measured flow
        (same sender machinery, same paths) but is excluded from the
        per-application results — it models the traffic a real experiment
        shares its bottlenecks with but cannot observe.
        """
        self.add_flow(config)
        self._cross_flow_ids.add(config.flow_id)

    # -- dynamic traffic -------------------------------------------------------

    def add_traffic_source(self, source: TrafficSource) -> None:
        """Attach a dynamic traffic source (finite flows churning at runtime).

        The source's arrival process decides *when* flows spawn and its
        size sampler *how much* each transfers; spawned senders start
        mid-simulation, complete when their transfer is acknowledged and
        retire.  Like cross traffic, dynamic flows are excluded from the
        per-application results, but their lifecycle (spawn/completion
        counts, flow-completion times, delivered bytes) is reported per
        source in ``PacketSimResult.traffic``.
        """
        labels = {
            src.label or f"source{i}" for i, src in enumerate(self._traffic_sources)
        }
        label = source.label or f"source{len(self._traffic_sources)}"
        if label in labels:
            raise ValueError(f"traffic source label {label!r} already attached")
        self._traffic_sources.append(source)

    def _schedule_traffic(self, duration_s: float) -> None:
        """Pre-generate every source's arrivals and schedule the spawns.

        Arrival times and transfer sizes are drawn *before* the
        simulation runs, from an RNG derived deterministically from the
        network seed and the source index — so the spawn sequence is a
        pure function of the spec, independent of event interleaving.
        """
        for index, source in enumerate(self._traffic_sources):
            path = source.path if source.path is not None else PathConfig()
            for name in path.queues:
                if name not in self._queues:
                    raise KeyError(
                        f"traffic source {index} routes through unknown queue "
                        f"{name!r}; known queues: {sorted(self._queues)}"
                    )
            # String seeding hashes with SHA-512 under the hood, so the
            # derived stream is stable across processes and platforms.
            rng = random.Random(f"traffic:{self._seed}:{index}")
            times = source.arrivals.arrival_times(rng, duration_s, source.demand)
            self._dynamic_senders[index] = []
            for arrival in times:
                size = source.sizes.sample(rng)
                self.scheduler.schedule(
                    arrival,
                    lambda i=index, s=size: self._spawn_dynamic_flow(i, s),
                )

    def _spawn_dynamic_flow(self, source_index: int, size_bytes: float) -> None:
        """Spawn one finite transfer from a traffic source, starting now."""
        source = self._traffic_sources[source_index]
        path = source.path if source.path is not None else PathConfig()
        rtt_ms = source.rtt_ms if source.rtt_ms is not None else path.rtt_ms
        rtt_s = (rtt_ms if rtt_ms is not None else self.base_rtt_ms) / 1000.0
        cid = self._next_connection
        self._next_connection += 1
        sender = make_sender(
            source.cc,
            cid,
            self.scheduler,
            self._ingress,
            mss_bytes=self.mss_bytes,
            base_rtt_s=rtt_s,
            paced=source.paced,
            ecn=source.ecn,
            transfer_bytes=size_bytes,
            batch_segments=self._batch_segments,
            pool=self._pool,
        )
        self._senders[cid] = sender
        self._connection_owner[cid] = DYNAMIC_UNIT_BASE + cid
        self._routes[cid] = path.queues
        self._rtt_s[cid] = rtt_s
        self._loss_rate[cid] = path.loss_rate
        self._dynamic_senders[source_index].append(sender)
        sender.start()

    # -- packet forwarding -----------------------------------------------------

    def _ingress(self, packet: Packet) -> None:
        """Entry point for sender transmissions: loss segment, then first queue."""
        cid = packet.flow_id
        loss_rate = self._loss_rate[cid]
        if loss_rate > 0.0 and self._rng.random() < loss_rate:
            self.random_losses += 1
            self._notify_loss(packet, self.scheduler.now)
            return
        self._queues[self._routes[cid][0]].enqueue(packet)

    def _departure_handler(self, queue_name: str):
        def on_departure(packet: Packet, departure_time: float) -> None:
            route = self._routes[packet.flow_id]
            hop = route.index(queue_name)
            if hop + 1 < len(route):
                self._queues[route[hop + 1]].enqueue(packet)
                return
            sender = self._senders[packet.flow_id]
            ack_time = departure_time + self._rtt_s[packet.flow_id]

            def deliver_ack(sender=sender, packet=packet, ack_time=ack_time) -> None:
                rtt_sample = ack_time - packet.send_time
                sender.handle_ack(packet, rtt_sample)
                # The ack was this packet's one terminal event (each packet
                # ends in exactly one of ack / loss): recycle the slot.
                self._pool.release(packet)

            self.scheduler.schedule(ack_time, deliver_ack)

        return on_departure

    def _drop_handler(self):
        def on_drop(packet: Packet, drop_time: float) -> None:
            self._notify_loss(packet, drop_time)

        return on_drop

    def _notify_loss(self, packet: Packet, loss_time: float) -> None:
        sender = self._senders[packet.flow_id]
        notify_time = loss_time + self._rtt_s[packet.flow_id]

        def deliver_loss(sender=sender, packet=packet) -> None:
            sender.handle_loss(packet)
            self._pool.release(packet)

        self.scheduler.schedule(notify_time, deliver_loss)

    # -- execution ------------------------------------------------------------

    def run(
        self,
        duration_s: float,
        warmup_s: float,
        probe: ProbeConfig | None = None,
    ) -> PacketSimResult:
        """Run the simulation and assemble per-application results.

        With a ``probe``, the scheduler runs in probe-interval chunks and
        the network samples read-only snapshots between chunks.  Both
        scheduler kinds pop the identical event order across repeated
        ``run(until=t)`` barriers, so the probed run's event sequence —
        and therefore every result and counter — is byte-identical to the
        unprobed one (pinned by the golden tests).
        """
        from repro.netsim.packet.simulation import FlowResult, PacketSimResult
        from repro.netsim.traffic.source import DynamicTrafficResult

        measured = [
            c for c in self._flow_configs if c.flow_id not in self._cross_flow_ids
        ]
        if not measured:
            raise ValueError(
                "at least one flow is required (cross traffic alone is unmeasurable)"
            )
        if duration_s <= warmup_s:
            raise ValueError("duration_s must exceed warmup_s")

        # Stagger starts slightly to avoid perfectly synchronized slow
        # starts; each sender starts within its own first RTT.
        n = max(len(self._senders), 1)
        for i, sender in enumerate(self._senders.values()):
            self.scheduler.schedule(i * sender.base_rtt_s / n, sender.start)

        def begin_measurements() -> None:
            for sender in self._senders.values():
                sender.begin_measurement()

        self.scheduler.schedule(warmup_s, begin_measurements)
        self._schedule_traffic(duration_s)
        probe_log = None
        if probe is None:
            self.scheduler.run(until=duration_s)
        else:
            prober = Probe(probe)
            for t in prober.sample_times(duration_s):
                self.scheduler.run(until=t)
                prober.sample(t, *self._probe_snapshots(probe))
            self.scheduler.run(until=duration_s)
            probe_log = prober.log()

        results: list[FlowResult] = []
        for config in measured:
            own = [
                self._senders[cid]
                for cid, owner in self._connection_owner.items()
                if owner == config.flow_id
            ]
            throughput = sum(s.goodput_mbps(duration_s) for s in own)
            sent = sum(s.measured_bytes_sent for s in own)
            retx = sum(s.measured_bytes_retransmitted for s in own)
            completed: bool | None = None
            fct_s: float | None = None
            if config.transfer_bytes is not None:
                # The application's transfer completes when its *last*
                # connection does; the FCT runs from the first start.
                completed = all(s.completed for s in own)
                if completed:
                    fct_s = max(s.completion_time for s in own) - min(
                        s.start_time for s in own
                    )
            results.append(
                FlowResult(
                    flow_id=config.flow_id,
                    treated=config.treated,
                    throughput_mbps=throughput,
                    retransmit_fraction=retx / sent if sent > 0 else 0.0,
                    packets_sent=sum(s.packets_sent for s in own),
                    packets_lost=sum(s.packets_lost for s in own),
                    packets_marked=sum(s.packets_marked for s in own),
                    completed=completed,
                    fct_s=fct_s,
                )
            )

        traffic: dict[str, DynamicTrafficResult] = {}
        for index, source in enumerate(self._traffic_sources):
            label = source.label or f"source{index}"
            senders = self._dynamic_senders.get(index, [])
            traffic[label] = DynamicTrafficResult(
                label=label,
                flows_started=len(senders),
                flows_completed=sum(1 for s in senders if s.completed),
                completion_times_s=tuple(
                    s.completion_time - s.start_time for s in senders if s.completed
                ),
                bytes_acked=sum(s.bytes_acked for s in senders),
            )

        return PacketSimResult(
            flows=results,
            duration_s=duration_s,
            capacity_mbps=self.capacity_mbps,
            total_drops=sum(q.packets_dropped for q in self._queues.values())
            + self.random_losses,
            max_queue_occupancy_bytes=max(
                q.max_occupancy_bytes for q in self._queues.values()
            ),
            queue_drops={name: q.packets_dropped for name, q in self._queues.items()},
            queue_marks={name: q.packets_marked for name, q in self._queues.items()},
            traffic=traffic,
            engine=EngineCounters(
                scheduler=self.scheduler.kind,
                events_processed=self.scheduler.events_processed,
                events_scheduled=self.scheduler.events_scheduled,
                pool_acquired=self._pool.acquired,
                pool_reused=self._pool.reused,
                random_losses=self.random_losses,
            ),
            probe=probe_log,
        )

    def _probe_snapshots(
        self, config: ProbeConfig
    ) -> tuple[dict[str, dict[str, float]], dict[int, dict[str, float]]]:
        """Snapshot dictionaries for one probe sampling instant.

        The network prepares these so the probe never reaches into
        simulator objects; disabled kinds yield empty mappings so the
        snapshot cost is only paid for what the probe records.
        """
        queues: dict[str, dict[str, float]] = {}
        flows: dict[int, dict[str, float]] = {}
        if config.include_queues:
            queues = {name: q.probe_snapshot() for name, q in self._queues.items()}
        if config.include_flows:
            flows = {cid: s.probe_snapshot() for cid, s in self._senders.items()}
        return queues, flows
