"""Property tests: the calendar scheduler is order-identical to the heap.

The network builder treats the scheduler as a pure speed knob, which is
only sound if both implementations fire the same callbacks in the same
order for any call sequence — including ties (scheduling order wins),
cancellation, re-arming from inside callbacks, and events beyond the
calendar's ring horizon.  These tests drive both schedulers through
identical scripts (deterministic ones plus a seeded fuzz) and require
identical traces, then do the same end to end with full simulations.
"""

import random
from dataclasses import replace

import pytest

from repro.netsim.packet.engine import (
    CalendarScheduler,
    EventScheduler,
    SCHEDULERS,
    make_scheduler,
)
from repro.netsim.packet.simulation import FlowConfig, simulate


def normalized(result):
    """A result with its engine's scheduler label blanked.

    ``EngineCounters.scheduler`` records *which implementation ran* —
    the one field that legitimately differs across order-identical
    schedulers.  Every counter must still match exactly.
    """
    return replace(result, engine=replace(result.engine, scheduler=""))


def both():
    """A fresh (heap, calendar) pair with a deliberately awkward geometry:
    a coarse 0.25 s bucket so many distinct times share a bucket, and a
    tiny ring so modest horizons wrap into later years."""
    return EventScheduler(), CalendarScheduler(bucket_s=0.25, buckets=8)


class TestOrderParity:
    def run_script(self, script):
        """Apply ``script(sched, trace)`` to both schedulers, return traces."""
        traces = []
        for sched in both():
            trace = []
            script(sched, trace)
            traces.append(trace)
        assert traces[0] == traces[1]
        return traces[0]

    def test_ties_fire_in_scheduling_order(self):
        def script(sched, trace):
            for tag in range(6):
                sched.schedule(1.0, lambda tag=tag: trace.append(tag))
            sched.run(until=2.0)

        assert self.run_script(script) == [0, 1, 2, 3, 4, 5]

    def test_interleaved_times_and_ties(self):
        def script(sched, trace):
            for tag, t in enumerate([3.0, 1.0, 2.0, 1.0, 3.0, 0.5]):
                sched.schedule(t, lambda tag=tag, t=t: trace.append((t, tag)))
            sched.run(until=10.0)

        assert self.run_script(script) == [
            (0.5, 5), (1.0, 1), (1.0, 3), (2.0, 2), (3.0, 0), (3.0, 4)
        ]

    def test_cancellation(self):
        def script(sched, trace):
            ids = [
                sched.schedule(t, lambda t=t: trace.append(t))
                for t in [1.0, 1.0, 2.0, 3.0]
            ]
            sched.cancel(ids[0])
            sched.cancel(ids[2])
            sched.cancel(ids[2])  # idempotent
            sched.cancel(999)  # unknown: no-op
            sched.run(until=10.0)
            trace.append(("len", len(sched)))

        assert self.run_script(script) == [1.0, 3.0, ("len", 0)]

    def test_rearm_from_inside_callbacks(self):
        def script(sched, trace):
            def chain(n):
                trace.append((round(sched.now, 6), n))
                if n < 5:
                    sched.schedule_in(0.3, lambda: chain(n + 1))

            sched.schedule(0.1, lambda: chain(0))
            # A decoy that each chain step cancels-and-replaces.
            decoy = [sched.schedule(9.0, lambda: trace.append("decoy"))]

            def swap():
                sched.cancel(decoy[0])
                decoy[0] = sched.schedule(9.0, lambda: trace.append("decoy"))

            for k in range(4):
                sched.schedule(0.2 + 0.3 * k, swap)
            sched.run(until=20.0)

        trace = self.run_script(script)
        assert trace[-1] == "decoy"
        assert [n for item in trace if isinstance(item, tuple) for n in [item[1]]] == [
            0, 1, 2, 3, 4, 5
        ]

    def test_far_future_events_beyond_ring_horizon(self):
        # The awkward geometry gives a 2 s year; events dozens of years
        # out must still fire, in order.
        def script(sched, trace):
            for tag, t in enumerate([100.0, 3.0, 55.5, 0.1, 55.5]):
                sched.schedule(t, lambda tag=tag: trace.append(tag))
            sched.run(until=1000.0)

        assert self.run_script(script) == [3, 1, 2, 4, 0]

    def test_run_until_boundary_is_inclusive_and_resumable(self):
        def script(sched, trace):
            sched.schedule(1.0, lambda: trace.append("at"))
            sched.schedule(1.0 + 1e-9, lambda: trace.append("after"))
            sched.run(until=1.0)
            trace.append(("now", sched.now, "len", len(sched)))
            sched.run(until=2.0)

        assert self.run_script(script) == [
            "at", ("now", 1.0, "len", 1), "after"
        ]

    def test_fuzzed_scripts(self):
        # Random schedule/cancel/run interleavings: both schedulers must
        # produce identical (time, tag) traces and identical clocks.
        for seed in range(30):
            rng_script = []
            rng = random.Random(seed)
            horizon = 0.0
            for _ in range(rng.randint(20, 120)):
                op = rng.random()
                if op < 0.6:
                    rng_script.append(("schedule", rng.uniform(0.0, 10.0)))
                elif op < 0.8:
                    rng_script.append(("cancel", rng.randint(0, 200)))
                else:
                    horizon += rng.uniform(0.0, 1.0)
                    rng_script.append(("run", horizon))
            rng_script.append(("run", 20.0))

            traces = []
            for sched in both():
                trace = []
                ids = []
                for step in rng_script:
                    if step[0] == "schedule":
                        t = max(step[1], sched.now)
                        tag = len(ids)
                        ids.append(
                            sched.schedule(t, lambda t=t, tag=tag: trace.append((t, tag)))
                        )
                    elif step[0] == "cancel":
                        if ids:
                            sched.cancel(ids[step[1] % len(ids)])
                    else:
                        sched.run(until=step[1])
                trace.append(("final", sched.now, len(sched)))
                traces.append(trace)
            assert traces[0] == traces[1], f"trace divergence for fuzz seed {seed}"


class TestFullSimulationParity:
    def test_mixed_cc_sim_identical_across_schedulers(self):
        flows = [
            FlowConfig(0, cc="reno", connections=2, treated=True),
            FlowConfig(1, cc="cubic", paced=True),
            FlowConfig(2, cc="bbr"),
        ]
        kwargs = dict(capacity_mbps=30.0, duration_s=5.0, warmup_s=2.0)
        runs = {
            kind: simulate(flows, scheduler=kind, **kwargs)
            for kind in ("heap", "calendar", "auto")
        }
        assert runs["heap"].engine.scheduler == "heap"
        assert runs["calendar"].engine.scheduler == "calendar"
        assert (
            normalized(runs["heap"])
            == normalized(runs["calendar"])
            == normalized(runs["auto"])
        )

    def test_fuzzed_sims_identical_across_schedulers(self):
        # Seeded random lab configs, exercising AQMs, ECN, random loss
        # and churn-free finite transfers: full results must be equal.
        for seed in range(6):
            rng = random.Random(1000 + seed)
            disciplines = ["droptail", "red", "codel", "fq_codel", "dualpi2"]
            discipline = rng.choice(disciplines)
            flows = []
            for i in range(rng.randint(1, 3)):
                cc = rng.choice(["reno", "cubic", "bbr"])
                ecn = rng.choice(
                    ["l4s"] if discipline == "dualpi2" else [False, "classic"]
                )
                flows.append(
                    FlowConfig(
                        i,
                        cc=cc,
                        connections=rng.randint(1, 2),
                        paced=rng.random() < 0.5,
                        ecn=ecn,
                        transfer_bytes=(
                            None if rng.random() < 0.7 else rng.uniform(1e5, 1e6)
                        ),
                    )
                )
            kwargs = dict(
                capacity_mbps=rng.choice([8.0, 20.0]),
                base_rtt_ms=rng.choice([10.0, 30.0]),
                duration_s=3.0,
                warmup_s=1.0,
                queue_discipline=discipline,
                seed=seed,
            )
            heap_run = simulate(flows, scheduler="heap", **kwargs)
            calendar_run = simulate(flows, scheduler="calendar", **kwargs)
            assert normalized(heap_run) == normalized(calendar_run), (
                f"sim divergence for fuzz seed {seed} ({discipline})"
            )


class TestCalendarScheduler:
    """Calendar-specific behaviour the shared parity tests don't cover."""

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            CalendarScheduler(bucket_s=0.0)
        with pytest.raises(ValueError):
            CalendarScheduler(bucket_s=1.0, buckets=1)

    def test_schedule_in_past_raises(self):
        sched = CalendarScheduler(bucket_s=0.5)
        sched.schedule(1.0, lambda: None)
        sched.run(until=2.0)
        with pytest.raises(ValueError):
            sched.schedule(1.5, lambda: None)

    def test_cancelled_events_do_not_accumulate(self):
        sched = CalendarScheduler(bucket_s=0.5, buckets=16)
        for _ in range(1000):
            sched.cancel(sched.schedule(1e6, lambda: None))
        assert len(sched) == 0
        assert len(sched._cancelled) <= 2 * CalendarScheduler._COMPACT_THRESHOLD
        total = sum(len(b) for b in sched._buckets)
        assert total <= 2 * CalendarScheduler._COMPACT_THRESHOLD

    def test_events_processed_counts_callbacks(self):
        sched = CalendarScheduler(bucket_s=0.5)
        cancelled = sched.schedule(1.0, lambda: None)
        sched.cancel(cancelled)
        for t in (0.5, 1.5, 2.5):
            sched.schedule(t, lambda: None)
        sched.run(until=2.0)
        assert sched.events_processed == 2  # the 2.5 s event is still pending
        assert sched.step()
        assert sched.events_processed == 3

    def test_suits_accepts_short_horizons_only(self):
        assert CalendarScheduler.suits(horizon_s=0.02, bucket_s=6e-5)
        assert not CalendarScheduler.suits(horizon_s=100.0, bucket_s=6e-5)
        assert not CalendarScheduler.suits(horizon_s=0.02, bucket_s=0.0)


class TestMakeScheduler:
    def test_registry_and_kinds(self):
        assert set(SCHEDULERS) == {"heap", "calendar"}
        assert isinstance(make_scheduler("heap"), EventScheduler)
        assert isinstance(make_scheduler("calendar", bucket_s=0.1), CalendarScheduler)

    def test_auto_picks_calendar_when_geometry_fits(self):
        sched = make_scheduler("auto", horizon_s=0.02, bucket_s=6e-5)
        assert sched.kind == "calendar"

    def test_auto_falls_back_to_heap(self):
        assert make_scheduler("auto", horizon_s=100.0, bucket_s=6e-5).kind == "heap"
        assert make_scheduler("auto").kind == "heap"  # no geometry hints

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("splay-tree")

    def test_calendar_requires_bucket_width(self):
        with pytest.raises(ValueError):
            make_scheduler("calendar")
