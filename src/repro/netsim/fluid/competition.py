"""Bandwidth-sharing and loss models for the fluid simulator.

The fluid model computes long-term average behaviour of long-lived flows
sharing one bottleneck.  It encodes three well-established empirical
results that the paper's lab experiments rest on:

1. **Per-connection fairness of loss-based TCP.**  ``n`` identical
   loss-based connections each receive ``C / n``; an application opening
   two connections receives twice the throughput of one opening a single
   connection (Balakrishnan et al. 1998, Briscoe 2007).

2. **Unpaced traffic outcompetes paced traffic.**  A paced Reno connection
   sharing a drop-tail bottleneck with unpaced Reno connections obtains a
   substantially lower share (Aggarwal et al. 2000, Wei et al. 2006); the
   paper's lab measures roughly 50 % lower throughput.

3. **BBR's aggregate share against loss-based traffic is roughly
   independent of flow counts.**  With a ~1 BDP buffer, the BBR aggregate
   claims a fixed fraction of the link when competing against Cubic,
   regardless of how many flows are on each side (Ware et al. 2019).

Retransmission rates come from the square-root TCP loss-throughput
relationship: a loss-based connection running at rate ``r`` over round-trip
time ``RTT`` with segment size ``S`` experiences a loss probability of
about ``1.5 (S / (RTT * r))^2``.  Pacing reduces the drop rate further by
removing burst losses.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.netsim.fluid.application import Application
from repro.netsim.fluid.link import BITS_PER_BYTE, BottleneckLink

__all__ = ["CompetitionModel", "allocate_throughput", "link_loss_rate"]


@dataclass(frozen=True)
class CompetitionModel:
    """Parameters of the fluid sharing and loss models.

    Attributes
    ----------
    paced_weight:
        Relative competitive weight of a paced loss-based connection against
        an unpaced one (0.5 reproduces the ~50 % lower throughput the paper
        measures).
    bbr_aggregate_share:
        Fraction of the link the BBR aggregate claims when at least one BBR
        flow competes with at least one loss-based flow (Ware et al. report
        ~0.35-0.45 for 1-BDP buffers).
    pacing_loss_floor:
        Fraction of the baseline loss rate that remains when all traffic is
        paced (burst losses eliminated, only congestive losses remain).
    cubic_weight:
        Relative competitive weight of a Cubic connection against Reno.
        Kept at 1.0: the paper's lab never mixes the two directly.
    """

    paced_weight: float = 0.5
    bbr_aggregate_share: float = 0.4
    pacing_loss_floor: float = 0.25
    cubic_weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.paced_weight <= 1.0:
            raise ValueError("paced_weight must be in (0, 1]")
        if not 0.0 < self.bbr_aggregate_share < 1.0:
            raise ValueError("bbr_aggregate_share must be in (0, 1)")
        if not 0.0 < self.pacing_loss_floor <= 1.0:
            raise ValueError("pacing_loss_floor must be in (0, 1]")
        if self.cubic_weight <= 0.0:
            raise ValueError("cubic_weight must be positive")

    def connection_weight(self, app: Application) -> float:
        """Competitive weight of one of the application's connections."""
        weight = 1.0
        if app.cc == "cubic":
            weight *= self.cubic_weight
        if app.paced and app.is_loss_based:
            weight *= self.paced_weight
        return weight


def _split_capacity(
    link: BottleneckLink,
    applications: Sequence[Application],
    model: CompetitionModel,
) -> tuple[float, float, int, float]:
    """Split capacity between the BBR aggregate and the loss-based aggregate.

    Returns ``(bbr_capacity_mbps, loss_capacity_mbps, n_bbr_connections,
    total_loss_weight)``.
    """
    n_bbr_connections = sum(a.connections for a in applications if a.cc == "bbr")
    loss_weight = sum(
        a.connections * model.connection_weight(a)
        for a in applications
        if a.is_loss_based
    )
    capacity = link.capacity_mbps
    if n_bbr_connections > 0 and loss_weight > 0:
        bbr_capacity = capacity * model.bbr_aggregate_share
        loss_capacity = capacity - bbr_capacity
    elif n_bbr_connections > 0:
        bbr_capacity, loss_capacity = capacity, 0.0
    else:
        bbr_capacity, loss_capacity = 0.0, capacity
    return bbr_capacity, loss_capacity, n_bbr_connections, loss_weight


def allocate_throughput(
    link: BottleneckLink,
    applications: Sequence[Application],
    model: CompetitionModel | None = None,
) -> dict[int, float]:
    """Long-term average throughput (Mb/s) of each application.

    The allocation first splits capacity between the BBR aggregate and the
    loss-based aggregate (see :class:`CompetitionModel`), then divides each
    aggregate among its connections in proportion to their competitive
    weights, and finally sums an application's connections.
    """
    if not applications:
        raise ValueError("at least one application is required")
    ids = [a.app_id for a in applications]
    if len(set(ids)) != len(ids):
        raise ValueError("application ids must be unique")
    model = model or CompetitionModel()

    bbr_capacity, loss_capacity, n_bbr, loss_weight = _split_capacity(
        link, applications, model
    )

    throughput: dict[int, float] = {}
    for app in applications:
        if app.cc == "bbr":
            per_connection = bbr_capacity / n_bbr if n_bbr else 0.0
            throughput[app.app_id] = per_connection * app.connections
        else:
            weight = app.connections * model.connection_weight(app)
            share = weight / loss_weight if loss_weight else 0.0
            throughput[app.app_id] = loss_capacity * share
    return throughput


def link_loss_rate(
    link: BottleneckLink,
    applications: Sequence[Application],
    model: CompetitionModel | None = None,
) -> float:
    """Steady-state packet loss (retransmission) rate at the bottleneck.

    All flows cross the same drop-tail queue, so every application observes
    (approximately) the same loss rate — this is why the within-test
    retransmission comparison in the paper's lab A/B tests shows no
    difference between arms even when the total loss rate changes a lot
    with the treatment allocation.

    The rate is the TCP loss-throughput relationship evaluated at the mean
    per-connection rate of the loss-based aggregate, scaled down as the
    fraction of paced bytes grows (pacing removes burst drops).  When only
    BBR traffic is present, the loss rate is BBR's ~2x-BDP overshoot loss,
    which is small for a 1-BDP buffer.
    """
    if not applications:
        raise ValueError("at least one application is required")
    model = model or CompetitionModel()

    throughput = allocate_throughput(link, applications, model)
    loss_based = [a for a in applications if a.is_loss_based]
    if not loss_based:
        # BBR-only: losses come from BBR's periodic probing overshooting the
        # 1-BDP buffer; small and independent of the number of flows.
        return 0.001

    total_loss_connections = sum(a.connections for a in loss_based)
    total_loss_throughput = sum(throughput[a.app_id] for a in loss_based)
    per_connection_mbps = total_loss_throughput / total_loss_connections
    if per_connection_mbps <= 0:
        return 1.0

    rtt_s = link.base_rtt_ms / 1000.0
    segment_bits = link.mtu_bytes * BITS_PER_BYTE
    rate_bps = per_connection_mbps * 1e6
    # Square-root model: rate = S/RTT * sqrt(3/2p)  =>  p = 1.5 (S/(RTT r))^2
    p = 1.5 * (segment_bits / (rtt_s * rate_bps)) ** 2
    p = min(p, 1.0)

    paced_bytes = sum(throughput[a.app_id] for a in loss_based if a.paced)
    paced_fraction = paced_bytes / total_loss_throughput if total_loss_throughput else 0.0
    burst_factor = model.pacing_loss_floor + (1.0 - model.pacing_loss_floor) * (
        1.0 - paced_fraction
    )
    return p * burst_factor
