"""Lab A/B-test harness on the fluid simulator.

Recreates the structure of the paper's Section 3 experiments: ``n`` units
(applications) share one bottleneck; the experimenter sweeps the number of
treated units from 0 to ``n`` and records each group's average throughput
and retransmission rate.  Every point of the sweep is one possible A/B
test; the endpoints give the total treatment effect; the control group's
drift gives the spillover.

The harness produces :class:`~repro.core.estimands.PotentialOutcomeCurve`
objects so the causal machinery of :mod:`repro.core` can be applied
directly to the lab data — the same workflow an experimenter would follow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.core.estimands import PotentialOutcomeCurve
from repro.netsim.fluid.application import Application
from repro.netsim.fluid.competition import (
    CompetitionModel,
    allocate_throughput,
    link_loss_rate,
)
from repro.netsim.fluid.link import BottleneckLink
from repro.runner.cache import ResultCache
from repro.runner.executor import ParallelExecutor
from repro.runner.spec import ScenarioSpec

__all__ = [
    "LabExperimentResult",
    "LabSweepResult",
    "run_lab_experiment",
    "run_lab_sweep",
    "run_isolated_sweep",
]

#: Metrics measured for each application in a lab experiment.
LAB_METRICS: tuple[str, ...] = ("throughput_mbps", "retransmit_fraction")


@dataclass(frozen=True)
class LabExperimentResult:
    """Per-application outcomes of one lab run at a fixed allocation.

    Attributes
    ----------
    applications:
        The applications in the run (treatment configuration already applied).
    throughput_mbps:
        Average long-term throughput of each application, keyed by app id.
    retransmit_fraction:
        Fraction of bytes retransmitted by each application, keyed by app id.
    """

    applications: tuple[Application, ...]
    throughput_mbps: Mapping[int, float]
    retransmit_fraction: Mapping[int, float]

    def group_mean(self, metric: str, treated: bool) -> float:
        """Mean of a metric over the treated or control applications."""
        values = self.group_values(metric, treated)
        if not values:
            raise ValueError(
                f"no {'treated' if treated else 'control'} applications in this run"
            )
        return float(np.mean(values))

    def group_values(self, metric: str, treated: bool) -> list[float]:
        """Per-application values of a metric for one arm."""
        if metric not in LAB_METRICS:
            raise KeyError(f"unknown lab metric {metric!r}; expected one of {LAB_METRICS}")
        source = (
            self.throughput_mbps if metric == "throughput_mbps" else self.retransmit_fraction
        )
        return [
            float(source[a.app_id]) for a in self.applications if a.treated == treated
        ]

    def ab_estimate(self, metric: str) -> float:
        """The naive A/B estimate: treated mean minus control mean."""
        return self.group_mean(metric, True) - self.group_mean(metric, False)


def run_lab_experiment(
    applications: Sequence[Application],
    link: BottleneckLink | None = None,
    model: CompetitionModel | None = None,
    noise: float = 0.0,
    seed: int | None = None,
) -> LabExperimentResult:
    """Run one lab test: all applications share the bottleneck.

    Parameters
    ----------
    applications:
        The applications sharing the link.
    link:
        The bottleneck (defaults to the paper's 10 Gb/s / 1 ms / 1 BDP link).
    model:
        Fluid competition model parameters.
    noise:
        Relative standard deviation of multiplicative measurement noise
        applied to each application's metrics (0 disables noise).
    seed:
        Seed for the measurement noise.
    """
    link = link or BottleneckLink()
    model = model or CompetitionModel()
    throughput = allocate_throughput(link, applications, model)
    loss = link_loss_rate(link, applications, model)

    rng = np.random.default_rng(seed)
    noisy_throughput: dict[int, float] = {}
    noisy_retrans: dict[int, float] = {}
    for app in applications:
        t_factor = 1.0 + (rng.normal(0.0, noise) if noise > 0 else 0.0)
        r_factor = 1.0 + (rng.normal(0.0, noise) if noise > 0 else 0.0)
        noisy_throughput[app.app_id] = max(throughput[app.app_id] * t_factor, 0.0)
        noisy_retrans[app.app_id] = float(np.clip(loss * r_factor, 0.0, 1.0))

    return LabExperimentResult(
        applications=tuple(applications),
        throughput_mbps=noisy_throughput,
        retransmit_fraction=noisy_retrans,
    )


@dataclass
class LabSweepResult:
    """Results of sweeping the number of treated units from 0 to n.

    Attributes
    ----------
    n_units:
        Total number of applications in every run.
    results:
        ``results[k]`` is the :class:`LabExperimentResult` with ``k`` treated
        applications.
    """

    n_units: int
    results: dict[int, LabExperimentResult] = field(default_factory=dict)

    @property
    def allocations(self) -> list[float]:
        """Treatment allocations covered by the sweep."""
        return [k / self.n_units for k in sorted(self.results)]

    def curve(self, metric: str) -> PotentialOutcomeCurve:
        """Potential-outcome curve ``mu_T(p)``, ``mu_C(p)`` for a metric."""
        mu_t: dict[float, float] = {}
        mu_c: dict[float, float] = {}
        for k, result in self.results.items():
            p = k / self.n_units
            if k > 0:
                mu_t[p] = result.group_mean(metric, treated=True)
            if k < self.n_units:
                mu_c[p] = result.group_mean(metric, treated=False)
        return PotentialOutcomeCurve(metric, mu_t, mu_c)

    def ab_estimates(self, metric: str) -> dict[float, float]:
        """Naive A/B estimates at every interior allocation of the sweep."""
        estimates: dict[float, float] = {}
        for k, result in self.results.items():
            if 0 < k < self.n_units:
                estimates[k / self.n_units] = result.ab_estimate(metric)
        return estimates

    def tte(self, metric: str) -> float:
        """Total treatment effect measured by the sweep's endpoints."""
        return self.curve(metric).tte()

    def spillover(self, metric: str, allocation: float) -> float:
        """Spillover on control units at the given allocation."""
        return self.curve(metric).spillover(allocation)


def run_lab_sweep(
    n_units: int,
    treatment_factory: Callable[[int], Application],
    control_factory: Callable[[int], Application],
    link: BottleneckLink | None = None,
    model: CompetitionModel | None = None,
    noise: float = 0.0,
    seed: int | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    executor: ParallelExecutor | None = None,
) -> LabSweepResult:
    """Sweep the number of treated applications from 0 to ``n_units``.

    Parameters
    ----------
    n_units:
        Number of applications sharing the link in every run (paper: 10).
    treatment_factory, control_factory:
        Callables mapping an application id to a treated / control
        :class:`Application`.  The first ``k`` ids are treated in the run
        with ``k`` treated units.
    link, model, noise, seed:
        Passed through to :func:`run_lab_experiment`.
    jobs, cache, executor:
        Each allocation is one independent arm; arms run through a
        :class:`~repro.runner.executor.ParallelExecutor` with ``jobs``
        worker processes and an optional result cache.  Every arm derives
        its noise from ``seed + k``, so results are bit-identical for any
        ``jobs``.
    """
    if n_units < 1:
        raise ValueError("n_units must be at least 1")
    # Resolve defaults before building specs so the cache key records the
    # actual simulation inputs rather than None placeholders.
    link = link or BottleneckLink()
    model = model or CompetitionModel()
    specs: list[ScenarioSpec] = []
    for k in range(n_units + 1):
        apps: list[Application] = []
        for i in range(n_units):
            if i < k:
                apps.append(treatment_factory(i).as_treated())
            else:
                apps.append(control_factory(i).as_control())
        specs.append(
            ScenarioSpec(
                task="netsim.fluid_arm",
                params={
                    "applications": tuple(apps),
                    "link": link,
                    "model": model,
                    "noise": noise,
                },
                seed=None if seed is None else seed + k,
                label=f"fluid_arm[k={k}/{n_units}]",
            )
        )
    executor = executor or ParallelExecutor(jobs=jobs, cache=cache)
    sweep = LabSweepResult(n_units=n_units)
    for k, result in enumerate(executor.map(specs)):
        sweep.results[k] = result
    return sweep


def run_isolated_sweep(
    n_units: int,
    treatment_factory: Callable[[int], Application],
    control_factory: Callable[[int], Application],
    link: BottleneckLink | None = None,
    model: CompetitionModel | None = None,
) -> LabSweepResult:
    """Sweep in which every application has a dedicated (non-shared) link.

    This realizes the "no interference" world of the paper's Figure 1a:
    each unit's outcome cannot depend on other units' assignments because
    they share nothing.  Each application receives its own bottleneck with
    an equal slice ``capacity / n_units`` of the original link.
    """
    if n_units < 1:
        raise ValueError("n_units must be at least 1")
    link = link or BottleneckLink()
    slice_link = BottleneckLink(
        capacity_gbps=link.capacity_gbps / n_units,
        base_rtt_ms=link.base_rtt_ms,
        buffer_bdp=link.buffer_bdp,
        mtu_bytes=link.mtu_bytes,
    )
    sweep = LabSweepResult(n_units=n_units)
    for k in range(n_units + 1):
        throughput: dict[int, float] = {}
        retrans: dict[int, float] = {}
        apps: list[Application] = []
        for i in range(n_units):
            app = (
                treatment_factory(i).as_treated()
                if i < k
                else control_factory(i).as_control()
            )
            apps.append(app)
            solo = run_lab_experiment([app], link=slice_link, model=model)
            throughput[app.app_id] = solo.throughput_mbps[app.app_id]
            retrans[app.app_id] = solo.retransmit_fraction[app.app_id]
        sweep.results[k] = LabExperimentResult(tuple(apps), throughput, retrans)
    return sweep
