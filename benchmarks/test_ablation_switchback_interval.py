"""Ablation A2: sensitivity of the switchback estimate to the day assignment.

The paper notes that all ways of assigning treatment days "yielded similar
results, provided at least one day was in treatment and at least one day
was in control".  This ablation enumerates every 2-or-3-treatment-day
assignment of the five experiment days and checks that the estimated
throughput TTE always keeps its sign and stays within a reasonable band of
the paired-link estimate.
"""

from itertools import combinations

from benchmarks._helpers import EXPERIMENT_DAYS, run_once

from repro.core.designs import SwitchbackDesign
from repro.experiments.alternate_designs import emulate_switchback


def _all_assignments():
    assignments = []
    for k in (2, 3):
        assignments.extend(combinations(EXPERIMENT_DAYS, k))
    return assignments


def _sweep(outcome):
    estimates = {}
    for treatment_days in _all_assignments():
        result = emulate_switchback(
            outcome.experiment_table,
            EXPERIMENT_DAYS,
            design=SwitchbackDesign(treatment_days=treatment_days),
            metrics=("throughput_mbps",),
            baselines=outcome.baselines,
        )
        estimates[treatment_days] = result["throughput_mbps"].relative_percent
    return estimates


def test_ablation_switchback_day_assignment(benchmark, paired_outcome):
    estimates = run_once(benchmark, _sweep, paired_outcome)
    paired = paired_outcome.estimates["tte"]["throughput_mbps"].relative_percent

    print(f"\npaired-link throughput TTE: {paired:+.1f}%")
    for days, value in sorted(estimates.items()):
        print(f"  treatment days {days}: {value:+.1f}%")

    values = list(estimates.values())
    assert len(values) == 20
    # The large majority of assignments report an improvement; the exceptions
    # are the splits that put both weekend (most congested) days into the same
    # arm — the same seasonality hazard the paper flags for event studies.
    positive = sum(1 for v in values if v > 0.0)
    assert positive >= 0.7 * len(values)
    # The median assignment sits near the paired-link estimate.
    median = sorted(values)[len(values) // 2]
    assert abs(median - paired) < 10.0
    # And the spread across assignments stays bounded.
    assert max(values) - min(values) < 40.0
