"""Rule base class, diagnostics, and the lint-rule registry.

A lint rule is a class with a stable ``code`` (``DET001``, ``KEY001``,
...), a one-line ``summary``, and a ``check`` method that walks one
parsed file and yields :class:`Diagnostic` records.  Rules register
themselves with :func:`register_rule` so the engine, the CLI
(``repro lint --list-rules``) and the docs all draw from one table.

Rules are *scoped*: each declares the dotted module prefixes it applies
to (e.g. ``repro.netsim``).  Files outside every scope are skipped for
that rule; files that are not part of any package (test fixtures,
scratch scripts) are checked by every selected rule so the fixture
tests exercise each rule in isolation.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.devtools.lint.walker import FileContext

__all__ = ["Diagnostic", "Rule", "register_rule", "RULES", "rule_table"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a file position.

    Sort order is (path, line, col, code) so reports group by file and
    read top to bottom.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """Format as ``path:line:col: CODE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.

    Attributes
    ----------
    code:
        Stable rule identifier used in reports and suppressions.
    summary:
        One-line description shown by ``repro lint --list-rules``.
    scopes:
        Dotted module prefixes the rule applies to inside the ``repro``
        package.  ``None`` means the rule applies everywhere.  Files
        whose module cannot be determined (no enclosing package) are
        always in scope so fixture snippets exercise every rule.
    """

    code: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    scopes: ClassVar[tuple[str, ...] | None] = None

    def applies_to(self, module: str | None) -> bool:
        """Whether this rule is in scope for a file of dotted name ``module``."""
        if self.scopes is None or module is None:
            return True
        return any(
            module == scope or module.startswith(scope + ".") for scope in self.scopes
        )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for one parsed file."""
        raise NotImplementedError

    def report(self, ctx: FileContext, node: object, message: str) -> Diagnostic:
        """Build a diagnostic anchored at an AST node's position."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        return Diagnostic(
            path=str(ctx.path), line=line, col=col, code=self.code, message=message
        )


#: All registered rules, keyed by code.
RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Register a rule class under its ``code`` (class decorator)."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    existing = RULES.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(f"rule code {cls.code!r} already registered to {existing!r}")
    RULES[cls.code] = cls
    return cls


def rule_table() -> list[tuple[str, str]]:
    """``(code, summary)`` rows for every registered rule, sorted by code."""
    return [(code, RULES[code].summary) for code in sorted(RULES)]
