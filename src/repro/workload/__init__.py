"""Synthetic production workload: a Netflix-like paired-link video service.

The paper's Section 4 experiment runs on two reliably congested 100 Gb/s
peering links carrying millions of video sessions.  This subpackage
replaces that proprietary substrate with a synthetic equivalent that
preserves the mechanism under study:

* demand follows a diurnal curve with congested peak hours
  (:mod:`repro.workload.demand`);
* bitrate capping reduces the offered load of treated sessions
  (:mod:`repro.workload.video`);
* each link-hour's congestion state is a function of the aggregate offered
  load on that link (:mod:`repro.workload.congestion`) — which is exactly
  why treated and control sessions sharing a link interfere;
* per-session QoE and network metrics are generated from the congestion
  state, the session's own treatment, and per-link / per-account
  heterogeneity (:mod:`repro.workload.qoe`);
* :mod:`repro.workload.netflix` assembles everything into the paired-link
  session generator consumed by the experiment harnesses.
"""

from repro.workload.congestion import CongestionModel, LinkHourState
from repro.workload.demand import DiurnalDemandModel
from repro.workload.netflix import PairedLinkWorkload, WorkloadConfig
from repro.workload.qoe import SessionOutcomeModel
from repro.workload.video import BITRATE_LADDER_KBPS, BitrateCapPolicy, select_bitrate

__all__ = [
    "CongestionModel",
    "LinkHourState",
    "DiurnalDemandModel",
    "PairedLinkWorkload",
    "WorkloadConfig",
    "SessionOutcomeModel",
    "BITRATE_LADDER_KBPS",
    "BitrateCapPolicy",
    "select_bitrate",
]
