"""Section 5 — emulated switchback experiments and event studies.

The paired-link experiment ran *both* a 95 % and a 5 % allocation
simultaneously for five days.  That lets the paper ask: what would an
experimenter have measured if they had instead run

* an **event study** — pre-period at 5 % capping, then deploy 95 % capping
  from Friday onward (Figure 11); or
* a **switchback** — alternate whole days between 95 % capping and 5 %
  capping (Figure 12)?

Following Appendix B.2, the emulation takes the treated sessions on link 1
during the days assigned to treatment, the control sessions on link 2
during the days assigned to control, and runs the usual hourly
fixed-effects regression.  Figure 10 compares the TTE estimated by the two
emulated designs against the paired-link estimate.

The module also implements the A/A calibration the paper performed in the
week after the experiment: re-running the emulated analyses on a week where
no traffic was capped anywhere, and counting false positives.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.analysis.pipeline import AnalysisConfig, MetricEstimate, analyze_metric
from repro.core.designs import EventStudyDesign, SwitchbackDesign
from repro.core.units import SESSION_METRICS, OutcomeTable
from repro.runner.cache import ResultCache
from repro.runner.executor import ParallelExecutor
from repro.runner.spec import ScenarioSpec

__all__ = [
    "AlternateDesignComparison",
    "emulate_switchback",
    "emulate_event_study",
    "emulate_day_split",
    "run_aa_calibration",
    "compare_designs",
]


def emulate_day_split(
    table: OutcomeTable,
    treatment_days: Sequence[int],
    control_days: Sequence[int],
    treated_link: int = 1,
    control_link: int = 2,
    metrics: Sequence[str] = SESSION_METRICS,
    baselines: dict[str, float] | None = None,
    config: AnalysisConfig | None = None,
    treated_arm: int = 1,
    control_arm: int = 0,
) -> dict[str, MetricEstimate]:
    """Estimate TTE from a day split of the paired-link data.

    For the days assigned to treatment intervals, the emulation uses the
    treated sessions of the mostly-treated link; for control intervals, the
    control sessions of the mostly-control link (Appendix B.2).
    """
    treatment_days = [int(d) for d in treatment_days]
    control_days = [int(d) for d in control_days]
    if not treatment_days or not control_days:
        raise ValueError("both treatment and control day sets must be non-empty")
    overlap = set(treatment_days) & set(control_days)
    if overlap:
        raise ValueError(f"days {sorted(overlap)} appear in both arms")

    import numpy as np

    days = table["day"].astype(int)
    links = table["link"].astype(int)
    arms = table["treated"].astype(int)
    treated_table = table.select(
        np.isin(days, treatment_days) & (links == treated_link) & (arms == treated_arm)
    )
    control_table = table.select(
        np.isin(days, control_days) & (links == control_link) & (arms == control_arm)
    )
    if len(treated_table) == 0 or len(control_table) == 0:
        raise ValueError("the emulated day split selected an empty group")

    config = config or AnalysisConfig()
    estimates: dict[str, MetricEstimate] = {}
    for metric in metrics:
        baseline = (baselines or {}).get(metric)
        estimates[metric] = analyze_metric(
            treated_table,
            control_table,
            metric,
            estimand="tte_emulated",
            baseline=baseline,
            config=config,
        )
    return estimates


def emulate_switchback(
    table: OutcomeTable,
    days: Sequence[int],
    design: SwitchbackDesign | None = None,
    metrics: Sequence[str] = SESSION_METRICS,
    baselines: dict[str, float] | None = None,
    config: AnalysisConfig | None = None,
) -> dict[str, MetricEstimate]:
    """Emulate a switchback experiment from the paired-link data.

    The default design fixes the assignment the paper used: treatment on
    the first, third and fifth days.
    """
    days = [int(d) for d in days]
    if design is None:
        design = SwitchbackDesign(treatment_days=tuple(days[0::2]))
    treatment_days = design.treatment_days_for(days)
    control_days = design.control_days_for(days)
    return emulate_day_split(
        table,
        treatment_days,
        control_days,
        metrics=metrics,
        baselines=baselines,
        config=config,
    )


def emulate_event_study(
    table: OutcomeTable,
    days: Sequence[int],
    design: EventStudyDesign | None = None,
    metrics: Sequence[str] = SESSION_METRICS,
    baselines: dict[str, float] | None = None,
    config: AnalysisConfig | None = None,
) -> dict[str, MetricEstimate]:
    """Emulate an event study (deployment) from the paired-link data.

    The default switches to 95 % capping between the second and third day
    of the five-day experiment — the paper's Thursday/Friday switch.
    """
    days = sorted(int(d) for d in days)
    if design is None:
        design = EventStudyDesign(switch_day=days[len(days) // 2])
    return emulate_day_split(
        table,
        design.post_days(days),
        design.pre_days(days),
        metrics=metrics,
        baselines=baselines,
        config=config,
    )


def run_aa_calibration(
    aa_table: OutcomeTable,
    days: Sequence[int],
    treatment_days: Sequence[int],
    metrics: Sequence[str] = SESSION_METRICS,
    config: AnalysisConfig | None = None,
) -> dict[str, MetricEstimate]:
    """Run an emulated day-split analysis on A/A data (no capping anywhere).

    Every significant estimate returned here is a false positive; the paper
    uses this to show that the switchback day assignment would not have
    produced false positives while contiguous (event-study) splits do,
    because of weekday/weekend seasonality.
    """
    days = [int(d) for d in days]
    treatment_days = [int(d) for d in treatment_days]
    control_days = [d for d in days if d not in set(treatment_days)]
    return emulate_day_split(
        aa_table,
        treatment_days,
        control_days,
        metrics=metrics,
        config=config,
        treated_arm=1,
        control_arm=0,
    )


@dataclass
class AlternateDesignComparison:
    """Figure 10: TTE estimates from the three designs, per metric."""

    paired_link: dict[str, MetricEstimate]
    switchback: dict[str, MetricEstimate]
    event_study: dict[str, MetricEstimate]

    #: Display order of the designs.
    DESIGNS: tuple[str, ...] = ("paired_link", "switchback", "event_study")

    def rows(self, metrics: Sequence[str] = SESSION_METRICS) -> list[dict[str, object]]:
        """One row per metric with each design's relative TTE (percent)."""
        out: list[dict[str, object]] = []
        for metric in metrics:
            row: dict[str, object] = {"metric": metric}
            for design in self.DESIGNS:
                estimate: MetricEstimate = getattr(self, design)[metric]
                row[design] = estimate.relative_percent
                row[f"{design}_ci"] = (
                    100.0 * estimate.relative.ci_low,
                    100.0 * estimate.relative.ci_high,
                )
            out.append(row)
        return out

    def switchback_covers_paired_link(self, metric: str) -> bool:
        """Does the switchback CI cover the paired-link point estimate?"""
        sb = self.switchback[metric].relative
        pl = self.paired_link[metric].relative.estimate
        return sb.covers(pl)


def compare_designs(
    experiment_table: OutcomeTable,
    days: Sequence[int],
    paired_link_estimates: dict[str, MetricEstimate],
    baselines: dict[str, float] | None = None,
    metrics: Sequence[str] = SESSION_METRICS,
    config: AnalysisConfig | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    executor: ParallelExecutor | None = None,
) -> AlternateDesignComparison:
    """Build the Figure 10 comparison from one paired-link run.

    The switchback and event-study emulations are independent analyses of
    the same table, so they run as two parallel scenario specs when
    ``jobs > 1``.
    """
    common = {
        "table": experiment_table,
        "days": tuple(int(d) for d in days),
        "metrics": tuple(metrics),
        "baselines": baselines,
        "analysis": config,
    }
    specs = (
        ScenarioSpec(
            task="experiments.switchback_emulation",
            params=common,
            label="compare_designs[switchback]",
        ),
        ScenarioSpec(
            task="experiments.event_study_emulation",
            params=common,
            label="compare_designs[event_study]",
        ),
    )
    executor = executor or ParallelExecutor(jobs=jobs, cache=cache)
    switchback, event_study = executor.map(specs)
    return AlternateDesignComparison(
        paired_link=paired_link_estimates,
        switchback=switchback,
        event_study=event_study,
    )
