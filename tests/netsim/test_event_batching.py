"""Event batching: macro-packet mechanics and trace equivalence.

Batching is an *approximation* knob (unlike the scheduler, which is
exact), so these tests pin two different contracts:

* mechanics — macro sizing, counter scaling, pooling and cache keying
  are exact properties, asserted exactly;
* fidelity — a batched run must reproduce the unbatched run's
  sender-visible metrics within stated tolerances at large windows (the
  regime batching targets).  Per-flow shares at small windows are
  chaotic even without batching (drop-tail synchronisation), so the
  per-flow tolerance is only meaningful on a large-BDP workload.
"""

import pytest

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet, PacketPool
from repro.netsim.packet.simulation import FlowConfig, simulate
from repro.netsim.packet.sweep import run_packet_sweep
from repro.netsim.packet.tcp import BBRSender, RenoSender

#: Large-BDP bottleneck (~333 packet BDP): windows are big enough for
#: full-size macros, so this is the regime the fidelity bounds cover.
LARGE_WINDOW = dict(
    capacity_mbps=200.0, base_rtt_ms=20.0, buffer_bdp=1.0, duration_s=4.0, warmup_s=1.0
)
#: Aggregate throughput must be essentially unchanged by batching.
AGGREGATE_RTOL = 0.01
#: Individual flow throughput may shift as losses land on different
#: packets (measured: ~7% on the workload below).
PER_FLOW_RTOL = 0.15
#: Retransmit fractions are near zero at this scale on both sides.
RETX_ATOL = 0.005


def large_window_flows():
    return [FlowConfig(i, cc="reno", connections=2) for i in range(4)]


class TestTraceEquivalence:
    @pytest.fixture(scope="class")
    def runs(self):
        flows = large_window_flows()
        return (
            simulate(flows, **LARGE_WINDOW),
            simulate(flows, event_batching=True, **LARGE_WINDOW),
        )

    def test_aggregate_throughput_preserved(self, runs):
        exact, batched = runs
        assert batched.total_throughput_mbps() == pytest.approx(
            exact.total_throughput_mbps(), rel=AGGREGATE_RTOL
        )

    def test_per_flow_throughput_within_tolerance(self, runs):
        exact, batched = runs
        for a, b in zip(exact.flows, batched.flows):
            assert b.throughput_mbps == pytest.approx(
                a.throughput_mbps, rel=PER_FLOW_RTOL
            )

    def test_retransmit_fraction_within_tolerance(self, runs):
        exact, batched = runs
        for a, b in zip(exact.flows, batched.flows):
            assert b.retransmit_fraction == pytest.approx(
                a.retransmit_fraction, abs=RETX_ATOL
            )

    def test_flows_remain_saturating(self, runs):
        _, batched = runs
        assert batched.total_throughput_mbps() >= 0.95 * LARGE_WINDOW["capacity_mbps"]

    def test_l4s_flows_never_batch(self):
        # DCTCP steers on per-packet mark fractions against a shallow
        # threshold; macro bursts inflate alpha until the flow starves
        # (a dualpi2 lab measurably loses half its throughput), so L4S
        # senders gate batching off — an all-L4S lab is bit-identical
        # with the knob on.
        flows = [
            FlowConfig(0, cc="cubic", ecn="l4s", connections=2),
            FlowConfig(1, cc="reno", ecn="l4s"),
        ]
        kw = dict(
            capacity_mbps=30.0,
            duration_s=6.0,
            warmup_s=2.0,
            queue_discipline="dualpi2",
        )
        exact = simulate(flows, **kw)
        batched = simulate(flows, event_batching=True, **kw)
        assert batched == exact
        assert batched.total_marks() > 0

    def test_aggregate_preserved_with_classic_ecn_aqm(self):
        flows = [
            FlowConfig(0, cc="reno", ecn="classic", connections=2),
            FlowConfig(1, cc="cubic", ecn="classic"),
        ]
        kw = dict(
            capacity_mbps=30.0, duration_s=6.0, warmup_s=2.0, queue_discipline="codel"
        )
        exact = simulate(flows, **kw)
        batched = simulate(flows, event_batching=True, **kw)
        assert batched.total_throughput_mbps() == pytest.approx(
            exact.total_throughput_mbps(), rel=0.05
        )

    def test_batching_reduces_event_count(self):
        # The point of the knob: O(1) events per macro instead of per
        # segment.  Count scheduler callbacks through the network.
        from repro.netsim.packet.network import Network

        def run_events(**kwargs):
            network = Network(
                capacity_mbps=LARGE_WINDOW["capacity_mbps"],
                base_rtt_ms=LARGE_WINDOW["base_rtt_ms"],
                buffer_bdp=LARGE_WINDOW["buffer_bdp"],
                **kwargs,
            )
            for i in range(4):
                network.add_flow(FlowConfig(i, cc="reno", connections=2))
            network.run(
                duration_s=LARGE_WINDOW["duration_s"],
                warmup_s=LARGE_WINDOW["warmup_s"],
            )
            return network.scheduler.events_processed

        exact_events = run_events()
        batched_events = run_events(event_batching=True)
        assert batched_events < exact_events / 2


class TestKnobInertness:
    """Defaults must be bit-identical to the pre-batching engine."""

    def test_batch_segments_inert_without_event_batching(self):
        flows = [FlowConfig(0, cc="reno", connections=2), FlowConfig(1, cc="cubic")]
        kw = dict(capacity_mbps=20.0, duration_s=4.0, warmup_s=1.0)
        default = simulate(flows, **kw)
        assert simulate(flows, batch_segments=23, **kw) == default
        assert simulate(flows, event_batching=False, batch_segments=8, **kw) == default

    def test_batching_on_changes_the_cache_key(self):
        specs = {}
        for batching in (False, True):
            recorder = _SpecRecorder()
            run_packet_sweep(
                2,
                treatment_factory=lambda i: FlowConfig(i, connections=2),
                control_factory=lambda i: FlowConfig(i),
                allocations=(1,),
                event_batching=batching,
                executor=recorder,
            )
            specs[batching] = recorder.specs[0]
        assert "event_batching" not in specs[False].params
        assert "batch_segments" not in specs[False].params
        assert specs[True].params["event_batching"] is True
        assert specs[True].params["batch_segments"] == 8
        from repro.runner.spec import content_key

        assert content_key(specs[True]) != content_key(specs[False])

    def test_scheduler_choice_stays_out_of_the_cache_key(self):
        # The scheduler is order-identical, so a non-default choice keys
        # the spec (it names the requested engine) but the default
        # ("auto") must produce the exact pre-existing key — flipping
        # the default from "heap" to "auto" must not split the cache.
        specs = {}
        for scheduler in ("auto", "heap", "calendar"):
            recorder = _SpecRecorder()
            run_packet_sweep(
                2,
                treatment_factory=lambda i: FlowConfig(i, connections=2),
                control_factory=lambda i: FlowConfig(i),
                allocations=(1,),
                scheduler=scheduler,
                executor=recorder,
            )
            specs[scheduler] = recorder.specs[0]
        assert "scheduler" not in specs["auto"].params
        assert specs["heap"].params["scheduler"] == "heap"
        assert specs["calendar"].params["scheduler"] == "calendar"


class TestBatchedSweepDeterminism:
    """jobs=1 vs jobs=4 stay bit-identical with batching enabled."""

    def _sweep(self, jobs):
        return run_packet_sweep(
            4,
            treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
            control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
            allocations=(0, 2, 4),
            capacity_mbps=20.0,
            duration_s=4.0,
            warmup_s=1.0,
            event_batching=True,
            jobs=jobs,
        )

    def test_jobs4_equals_serial_with_batching(self):
        serial = self._sweep(jobs=1)
        parallel = self._sweep(jobs=4)
        assert sorted(serial.results) == sorted(parallel.results)
        for k in serial.results:
            assert serial.results[k] == parallel.results[k]


class _SpecRecorder:
    """Stand-in executor capturing the specs a sweep would run."""

    def __init__(self):
        self.specs = []

    def map(self, specs):
        self.specs = list(specs)
        return [None] * len(specs)


def make_sender(cls=RenoSender, **kwargs):
    sent = []
    sender = cls(
        flow_id=0,
        scheduler=EventScheduler(),
        transmit=sent.append,
        **kwargs,
    )
    return sender, sent


class TestBatchSizing:
    def test_unbatched_sender_always_sends_singles(self):
        sender, _ = make_sender(initial_cwnd=100.0)
        assert sender._batch_size() == 1

    def test_macro_capped_by_window_fraction(self):
        # cwnd 40 → limit//4 = 10, below the requested 16.
        sender, _ = make_sender(batch_segments=16, initial_cwnd=40.0)
        assert sender._batch_size() == 10

    def test_macro_capped_by_requested_batch(self):
        sender, _ = make_sender(batch_segments=8, initial_cwnd=100.0)
        assert sender._batch_size() == 8

    def test_small_windows_degrade_to_singles(self):
        # cwnd below MIN_MACROS_PER_WINDOW: limit//4 == 0 → macro of 1.
        sender, _ = make_sender(batch_segments=8, initial_cwnd=3.0)
        assert sender._batch_size() == 1

    def test_macro_never_overshoots_window_headroom(self):
        sender, _ = make_sender(batch_segments=8, initial_cwnd=40.0)
        sender.inflight = 37
        assert sender._batch_size() == 3

    def test_macro_never_mixes_retransmissions_and_new_data(self):
        sender, _ = make_sender(batch_segments=8, initial_cwnd=100.0)
        sender._pending_retransmissions = 3
        assert sender._batch_size() == 3

    def test_macro_respects_finite_transfer_budget(self):
        sender, _ = make_sender(
            batch_segments=8, initial_cwnd=100.0, transfer_bytes=5 * 1500
        )
        assert sender._batch_size() == 5

    def test_batch_segments_validation(self):
        with pytest.raises(ValueError):
            make_sender(batch_segments=0)


class TestMacroCounterScaling:
    def _sender_with_macro_inflight(self, segments=5):
        sender, sent = make_sender(batch_segments=8, initial_cwnd=100.0)
        sender.batch_segments = 1  # stop further sends from batching
        sender.start()
        packet = Packet(
            flow_id=0,
            sequence=99,
            size_bytes=1500 * segments,
            send_time=0.0,
            segments=segments,
        )
        sender.inflight += segments
        return sender, packet

    def test_ack_scales_counters_by_segments(self):
        sender, packet = self._sender_with_macro_inflight(segments=5)
        acked_before = sender.packets_acked
        inflight_before = sender.inflight
        sender.handle_ack(packet, rtt_sample=0.02)
        assert sender.packets_acked == acked_before + 5
        assert sender.inflight <= inflight_before - 5 + sender.window_limit()

    def test_loss_scales_counters_but_reduces_once(self):
        sender, packet = self._sender_with_macro_inflight(segments=5)
        cwnd_before = sender.cwnd
        sender.paced = True  # suppress immediate retransmit sends
        sender._pacing_timer_armed = True
        sender.handle_loss(packet)
        assert sender.packets_lost == 5
        # One congestion event: a single multiplicative decrease, not five.
        assert sender.cwnd == pytest.approx(cwnd_before * 0.5)
        assert sender._pending_retransmissions == 5

    def test_batched_reno_growth_matches_serial_acks(self):
        # n singles vs one n-segment macro: congestion-avoidance growth
        # must agree to first order.
        serial, _ = make_sender(initial_cwnd=50.0)
        serial.ssthresh = 1.0
        batched, _ = make_sender(initial_cwnd=50.0)
        batched.ssthresh = 1.0
        one = Packet(flow_id=0, sequence=0, size_bytes=1500, send_time=0.0)
        for _ in range(8):
            serial.on_ack(one, 0.02)
        macro = Packet(
            flow_id=0, sequence=0, size_bytes=1500 * 8, send_time=0.0, segments=8
        )
        batched.on_ack_batch(macro, 0.02, segments=8)
        assert batched.cwnd == pytest.approx(serial.cwnd, rel=1e-3)

    def test_bbr_macro_takes_one_delivery_sample(self):
        # Replaying on_ack per segment would multiply delivered bytes by
        # the segment count; the batch hook must sample exactly once.
        sender, _ = make_sender(BBRSender, batch_segments=8, initial_cwnd=100.0)
        sender.start()
        macro = Packet(
            flow_id=0, sequence=0, size_bytes=1500 * 4, send_time=0.0, segments=4
        )
        delivered_before = sender._delivered_bytes_total
        sender.on_ack_batch(macro, 0.02, segments=4)
        assert sender._delivered_bytes_total == delivered_before + 1500 * 4


class TestPacketPool:
    def test_acquire_returns_fresh_when_empty(self):
        pool = PacketPool()
        packet = pool.acquire(flow_id=1, sequence=2, size_bytes=1500, send_time=0.5)
        assert (pool.acquired, pool.reused, len(pool)) == (1, 0, 0)
        assert packet.flow_id == 1 and packet.sequence == 2

    def test_reuse_rewrites_every_field(self):
        pool = PacketPool()
        first = pool.acquire(
            flow_id=1,
            sequence=2,
            size_bytes=3000,
            send_time=0.5,
            is_retransmission=True,
            ecn_capable=True,
            l4s=True,
            segments=2,
        )
        first.ce_marked = True  # simulate an AQM mark before retirement
        pool.release(first)
        second = pool.acquire(flow_id=7, sequence=9, size_bytes=1500, send_time=1.5)
        assert second is first  # the slot really was reused
        assert second == Packet(
            flow_id=7, sequence=9, size_bytes=1500, send_time=1.5
        )
        assert (pool.acquired, pool.reused) == (2, 1)

    def test_len_tracks_free_slots(self):
        pool = PacketPool()
        packets = [
            pool.acquire(flow_id=0, sequence=i, size_bytes=1500, send_time=0.0)
            for i in range(3)
        ]
        for packet in packets:
            pool.release(packet)
        assert len(pool) == 3
        pool.acquire(flow_id=0, sequence=9, size_bytes=1500, send_time=1.0)
        assert len(pool) == 2

    def test_simulation_actually_reuses_slots(self):
        from repro.netsim.packet.network import Network

        network = Network(capacity_mbps=10.0)
        network.add_flow(FlowConfig(0, cc="reno"))
        network.run(duration_s=2.0, warmup_s=0.5)
        assert network._pool.reused > 0
        # Live slots at any instant are bounded by inflight packets, so
        # the pool keeps allocation roughly at the high-water mark
        # instead of one object per send.
        fresh = network._pool.acquired - network._pool.reused
        assert fresh < network._pool.acquired / 2
