"""Invariant tests for every queue discipline (drop-tail, RED, CoDel,
FQ-CoDel).

Three properties must hold regardless of the admission/dequeue policy:

* conservation — once drained, served + dropped equals offered;
* bounded occupancy — the buffer limit is never exceeded;
* determinism — a discipline's behaviour is a pure function of its
  construction parameters (RED draws all randomness from its seed).

FQ-CoDel adds per-flow isolation (a bursty flow cannot starve a steady
one) and ECN adds the mark-instead-of-drop path on every AQM.
"""

import pytest

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.queue import (
    QUEUE_DISCIPLINES,
    CoDelQueue,
    DropTailQueue,
    FqCoDelQueue,
    REDQueue,
    make_queue,
)

ALL_DISCIPLINES = sorted(QUEUE_DISCIPLINES)


def make_packet(seq, size=1000, flow_id=0, ecn=False):
    return Packet(
        flow_id=flow_id, sequence=seq, size_bytes=size, send_time=0.0,
        ecn_capable=ecn,
    )


def build(discipline, rate_bps=8_000.0, buffer_bytes=4_000.0, **params):
    sched = EventScheduler()
    departed, dropped = [], []
    queue = make_queue(
        discipline,
        sched,
        rate_bps,
        buffer_bytes,
        on_departure=lambda p, t: departed.append((p.sequence, t)),
        on_drop=lambda p, t: dropped.append((p.sequence, t)),
        **params,
    )
    return sched, queue, departed, dropped


def offer_burst(sched, queue, n, gap_s=0.0, size=1000):
    """Offer ``n`` packets, ``gap_s`` apart, starting now."""
    for i in range(n):
        sched.schedule(sched.now + i * gap_s, lambda i=i: queue.enqueue(make_packet(i, size=size)))


class TestConservation:
    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_served_plus_dropped_equals_offered_after_drain(self, discipline):
        sched, queue, departed, dropped = build(discipline, buffer_bytes=3_000.0)
        offer_burst(sched, queue, 40, gap_s=0.05)
        sched.run(until=1e6)  # drain completely
        assert queue.occupancy_bytes == 0.0
        assert queue.occupancy_packets == 0
        assert queue.packets_served + queue.packets_dropped == queue.packets_offered
        assert len(departed) == queue.packets_served
        assert len(dropped) == queue.packets_dropped
        assert queue.packets_offered == 40

    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_every_packet_reported_exactly_once(self, discipline):
        sched, queue, departed, dropped = build(discipline, buffer_bytes=2_500.0)
        offer_burst(sched, queue, 25, gap_s=0.02)
        sched.run(until=1e6)
        seen = sorted([s for s, _ in departed] + [s for s, _ in dropped])
        assert seen == list(range(25))


class TestBoundedOccupancy:
    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_occupancy_never_exceeds_buffer(self, discipline):
        buffer_bytes = 3_500.0
        sched, queue, _, _ = build(discipline, buffer_bytes=buffer_bytes)
        high_water = []
        for i in range(60):
            sched.schedule(
                sched.now + i * 0.01,
                lambda i=i: (
                    queue.enqueue(make_packet(i)),
                    high_water.append(queue.occupancy_bytes),
                ),
            )
        sched.run(until=1e6)
        assert max(high_water) <= buffer_bytes
        assert queue.max_occupancy_bytes <= buffer_bytes


class TestDropTail:
    def test_registry_name(self):
        assert QUEUE_DISCIPLINES["droptail"] is DropTailQueue

    def test_drops_only_when_buffer_full(self):
        sched, queue, departed, dropped = build("droptail", buffer_bytes=2_000.0)
        results = [queue.enqueue(make_packet(i)) for i in range(4)]
        # First enters service; two fit the 2000-byte buffer; fourth drops.
        assert results == [True, True, True, False]
        assert [s for s, _ in dropped] == [3]


class TestRED:
    def test_early_drops_before_buffer_full(self):
        sched, queue, departed, dropped = build(
            "red", buffer_bytes=40_000.0, weight=0.5, min_threshold=0.05,
            max_threshold=0.5, max_drop_probability=0.9, seed=1,
        )
        offer_burst(sched, queue, 80, gap_s=0.01)
        sched.run(until=1e6)
        assert queue.packets_dropped > 0
        # RED dropped while far from the hard limit.
        assert queue.max_occupancy_bytes < 40_000.0

    def test_seeded_runs_identical(self):
        outcomes = []
        for _ in range(2):
            sched, queue, departed, dropped = build(
                "red", buffer_bytes=10_000.0, weight=0.3, seed=7,
            )
            offer_burst(sched, queue, 60, gap_s=0.02)
            sched.run(until=1e6)
            outcomes.append((tuple(departed), tuple(dropped)))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_can_differ(self):
        outcomes = []
        for seed in (1, 2):
            sched, queue, _, dropped = build(
                "red", buffer_bytes=10_000.0, weight=0.3,
                min_threshold=0.1, max_threshold=0.9,
                max_drop_probability=0.5, seed=seed,
            )
            offer_burst(sched, queue, 60, gap_s=0.02)
            sched.run(until=1e6)
            outcomes.append(tuple(s for s, _ in dropped))
        assert outcomes[0] != outcomes[1]

    def test_invalid_thresholds_raise(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            REDQueue(sched, 8000.0, 1000.0, lambda p, t: None, lambda p, t: None,
                     min_threshold=0.8, max_threshold=0.2)


class TestRedIdleDecay:
    """Regression: RED's EWMA must decay across idle periods.

    Without the Floyd & Jacobson idle-time correction the average stays
    stale-high after the queue drains, and RED over-drops the first
    packets of the next burst (with the parameters below, every arrival
    while the stale average sat above ``max_threshold`` was refused).
    """

    KWARGS = dict(
        rate_bps=8_000.0,  # one 1000-byte packet per second
        buffer_bytes=20_000.0,
        weight=0.5,
        min_threshold=0.05,
        max_threshold=0.2,
        max_drop_probability=1.0,
        seed=0,
    )

    def _burst(self, sched, queue, start, n):
        for i in range(n):
            sched.schedule(
                start + i * 0.01,
                lambda i=i: queue.enqueue(make_packet(i)),
            )

    def test_second_burst_after_long_idle_sees_fresh_queue(self):
        sched, queue, _, dropped = build("red", **self.KWARGS)
        # Burst 1 pushes the EWMA well above min_threshold (1000 bytes).
        self._burst(sched, queue, 0.0, 10)
        sched.run(until=50.0)  # fully drained; idle for ~40 packet-times
        assert queue.occupancy_packets == 0
        assert queue._avg_bytes > queue._min_bytes  # stale-high before decay
        first_burst_drops = len(dropped)
        assert first_burst_drops > 0  # RED was active during burst 1

        # Burst 2 after the long idle: the correction must have decayed
        # the average below min_threshold by the first arrival, so the
        # opening packets of the fresh burst are admitted (the stale-high
        # average used to push RED straight into its drop region).  RED
        # may drop again later, once burst 2 itself rebuilds the queue.
        decayed_avg = []
        sched.schedule(
            50.0,
            lambda: (
                queue.enqueue(make_packet(100)),
                decayed_avg.append(queue._avg_bytes),
            ),
        )
        self._burst(sched, queue, 50.01, 9)
        sched.run(until=100.0)
        assert decayed_avg[0] < queue._min_bytes  # idle correction applied
        # The EWMA needs several arrivals to climb back over min_threshold,
        # so the first packets of burst 2 can never be early-dropped.
        assert all(not 50.0 <= t < 50.025 for _, t in dropped)
        # Burst 2 replays burst 1's dynamics from a fresh average instead
        # of over-dropping from the stale one.
        second_burst_drops = len(dropped) - first_burst_drops
        assert second_burst_drops <= first_burst_drops + 2

    def test_short_idle_decays_partially(self):
        sched, queue, _, _ = build("red", **self.KWARGS)
        self._burst(sched, queue, 0.0, 10)
        sched.run(until=11.0)  # just drained, barely idle
        stale = queue._avg_bytes
        queue.enqueue(make_packet(99))
        # One idle second = one serviceable packet = one (1 - w) factor,
        # then the arrival's own zero-occupancy sample.
        assert 0.0 < queue._avg_bytes < stale


class TestCoDel:
    def test_no_drops_below_target_delay(self):
        # 8 Mb/s, one 1000-byte packet per 10 ms => 1 ms sojourn << 5 ms target.
        sched, queue, _, dropped = build("codel", rate_bps=8_000_000.0,
                                         buffer_bytes=100_000.0)
        offer_burst(sched, queue, 100, gap_s=0.01)
        sched.run(until=1e6)
        assert dropped == []

    def test_drops_under_sustained_overload(self):
        # Offered load 2x the drain rate: the standing queue exceeds the
        # 5 ms target for far longer than one 100 ms interval.
        sched, queue, _, dropped = build("codel", rate_bps=800_000.0,
                                         buffer_bytes=1e9)
        offer_burst(sched, queue, 400, gap_s=0.005)
        sched.run(until=1e6)
        assert len(dropped) > 0
        # Drops happen at dequeue, after real sojourn, not at arrival.
        assert all(t > 0.1 for _, t in dropped)

    def test_standing_delay_well_below_droptail(self):
        # Open-loop 2x overload: CoDel cannot pin an unresponsive source to
        # the 5 ms target (that takes a responsive sender), but its dequeue
        # drops must keep the standing delay far below drop-tail's, which
        # just lets the backlog grow toward the (here huge) buffer.
        late_delay = {}
        for discipline in ("codel", "droptail"):
            sched, queue, _, _ = build(discipline, rate_bps=800_000.0,
                                       buffer_bytes=1e9)
            delays = []
            for i in range(600):
                sched.schedule(
                    sched.now + i * 0.005,
                    lambda i=i: (queue.enqueue(make_packet(i)),
                                 delays.append(queue.queueing_delay())),
                )
            sched.run(until=1e6)
            late = delays[500:]
            late_delay[discipline] = sum(late) / len(late)
        assert late_delay["codel"] < 0.5 * late_delay["droptail"]

    def test_invalid_parameters_raise(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            CoDelQueue(sched, 8000.0, 1000.0, lambda p, t: None, lambda p, t: None,
                       target_delay_s=0.0)


class TestFqCoDel:
    """Per-flow isolation, DRR fairness and determinism of FQ-CoDel."""

    RATE = 8_000_000.0  # 1000-byte packet per millisecond

    def _two_flow_run(self, discipline):
        """A bursty flow 0 overloading the link against a paced flow 1.

        Returns the packets served per flow and the mean queueing delay
        experienced by the paced flow's delivered packets.
        """
        sched, queue, departed, dropped = build(
            discipline, rate_bps=self.RATE, buffer_bytes=30_000.0,
        )
        flow_of, arrival_of = {}, {}
        seq = 0
        # Flow 0: 25-packet bursts every 12.5 ms (2000 pps, 2x the link).
        for burst in range(80):
            for j in range(25):
                flow_of[seq] = 0
                arrival_of[seq] = burst * 0.0125
                sched.schedule(
                    burst * 0.0125,
                    lambda s=seq: queue.enqueue(make_packet(s, flow_id=0)),
                )
                seq += 1
        # Flow 1: one packet every 2.5 ms (400 pps, below its fair share).
        for i in range(400):
            flow_of[seq] = 1
            arrival_of[seq] = i * 0.0025
            sched.schedule(
                i * 0.0025,
                lambda s=seq: queue.enqueue(make_packet(s, flow_id=1)),
            )
            seq += 1
        sched.run(until=1e6)
        served = {0: 0, 1: 0}
        delays = []
        for s, t in departed:
            served[flow_of[s]] += 1
            if flow_of[s] == 1:
                delays.append(t - arrival_of[s])
        return served, sum(delays) / len(delays)

    def test_bursty_flow_cannot_starve_paced_flow(self):
        served, fq_delay = self._two_flow_run("fq_codel")
        # The paced flow stays below its fair share, so virtually all of
        # its packets come through despite the overloading bursts (the
        # buffer overflows land on the fattest sub-queue, the burster's)
        # and they never wait behind the burster's backlog.
        assert served[1] >= 0.95 * 400
        _, droptail_delay = self._two_flow_run("droptail")
        assert fq_delay < 0.25 * droptail_delay

    def test_fattest_subqueue_pays_for_overflow(self):
        # All buffer-overflow drops land on the overloading flow.
        sched, queue, departed, dropped = build(
            "fq_codel", rate_bps=self.RATE, buffer_bytes=30_000.0,
        )
        for i in range(200):  # flow 0: 2x overload, sustained
            sched.schedule(
                i * 0.0005, lambda i=i: queue.enqueue(make_packet(i, flow_id=0))
            )
        for i in range(200, 240):  # flow 1: well below its fair share
            sched.schedule(
                (i - 200) * 0.0025,
                lambda i=i: queue.enqueue(make_packet(i, flow_id=1)),
            )
        sched.run(until=1e6)
        assert queue.packets_dropped > 0
        assert all(s < 200 for s, _ in dropped)  # only flow 0 pays

    def test_backlogged_flows_share_capacity_equally(self):
        sched, queue, departed, _ = build(
            "fq_codel", rate_bps=self.RATE, buffer_bytes=1e9,
        )
        # Both flows dump 300 packets at t=0; DRR must alternate service.
        for i in range(300):
            queue.enqueue(make_packet(i, flow_id=0))
        for i in range(300, 600):
            queue.enqueue(make_packet(i, flow_id=1))
        sched.run(until=0.2)  # enough for ~200 departures
        first = [s for s, _ in departed][:150]
        flow1_share = sum(1 for s in first if s >= 300) / len(first)
        assert 0.4 <= flow1_share <= 0.6

    def test_seeded_runs_identical(self):
        outcomes = []
        for _ in range(2):
            sched, queue, departed, dropped = build(
                "fq_codel", rate_bps=800_000.0, buffer_bytes=50_000.0,
            )
            for i in range(300):
                sched.schedule(
                    i * 0.005,
                    lambda i=i: queue.enqueue(make_packet(i, flow_id=i % 3)),
                )
            sched.run(until=1e6)
            outcomes.append((tuple(departed), tuple(dropped)))
        assert outcomes[0] == outcomes[1]

    def test_custom_flow_key_classifier(self):
        # Keying both flows to one sub-queue removes the isolation: the
        # two-flow run behaves like one FIFO with CoDel.
        sched, queue, departed, _ = build(
            "fq_codel", rate_bps=self.RATE, buffer_bytes=1e9,
            flow_key=lambda packet: 0,
        )
        for i in range(100):
            queue.enqueue(make_packet(i, flow_id=i % 2))
        sched.run(until=0.06)
        # One shared sub-queue: strict FIFO order, no DRR interleaving.
        assert [s for s, _ in departed][:50] == list(range(50))

    def test_oversized_arrival_refused_without_evictions(self):
        # A packet that can never fit must be refused up front, not make
        # room by flushing innocent flows' backlogs first.
        sched, queue, _, dropped = build(
            "fq_codel", rate_bps=8_000.0, buffer_bytes=2_000.0,
        )
        queue.enqueue(make_packet(0, flow_id=0))  # straight into service
        queue.enqueue(make_packet(1, flow_id=1))  # queued
        assert queue.enqueue(make_packet(2, size=4000, flow_id=2)) is False
        assert queue.occupancy_packets == 1  # nobody was evicted
        assert [s for s, _ in dropped] == [2]

    def test_invalid_parameters_raise(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            FqCoDelQueue(sched, 8000.0, 1000.0, lambda p, t: None,
                         lambda p, t: None, quantum_bytes=0.0)
        with pytest.raises(ValueError):
            FqCoDelQueue(sched, 8000.0, 1000.0, lambda p, t: None,
                         lambda p, t: None, target_delay_s=0.0)


class TestFqCoDelNewFlowPriority:
    """RFC 8290 new/old sub-queue lists.

    A sub-queue born from an arrival is served strictly before the
    established (old) flows, but only for one deficit round; it then
    demotes to the tail of the old list.  The starvation regression
    pins the bound: however much a "new" flow has queued, and however
    fast fresh flows churn in, the old backlog keeps draining.
    """

    #: Slow link (one 1000-byte packet per second) with CoDel's drop law
    #: disabled, so service order shows the list mechanics undisturbed.
    ORDER_KWARGS = dict(rate_bps=8_000.0, buffer_bytes=1e9, target_delay_s=1e6)

    def test_new_flow_first_packet_skips_old_backlog(self):
        sched, queue, departed, _ = build("fq_codel", **self.ORDER_KWARGS)
        for i in range(10):  # old flow's standing backlog
            queue.enqueue(make_packet(i, flow_id=0))
        # A fresh flow's single packet arrives mid-drain (the old flow's
        # sub-queue demoted to the old list at t=2 when its first quantum
        # ran out) ...
        sched.schedule(2.5, lambda: queue.enqueue(make_packet(100, flow_id=1)))
        sched.run(until=1e6)
        # ... and is served at the very next dequeue, ahead of the seven
        # old packets still waiting.
        assert [s for s, _ in departed] == [0, 1, 2, 100, 3, 4, 5, 6, 7, 8, 9]

    def test_new_flow_priority_lasts_one_quantum(self):
        # The new flow dumps a 10-packet burst; only one quantum's worth
        # (one 1000-byte packet against the 1500-byte quantum) jumps the
        # queue, then DRR interleaves both flows fairly.
        sched, queue, departed, _ = build("fq_codel", **self.ORDER_KWARGS)
        for i in range(10):
            queue.enqueue(make_packet(i, flow_id=0))

        def burst():
            for j in range(100, 110):
                queue.enqueue(make_packet(j, flow_id=1))

        sched.schedule(2.5, burst)
        sched.run(until=1e6)
        order = [s for s, _ in departed]
        first_new = order.index(100)
        assert first_new == 3  # the bump ...
        assert order[first_new + 1] < 100  # ... ends after one quantum
        # From there on the tail is a fair interleave, never a monopoly.
        tail = order[first_new:]
        worst_gap = max(
            abs(sum(1 for s in tail[:k] if s >= 100) - k / 2) for k in range(2, 15)
        )
        assert worst_gap <= 2.0

    def test_churning_new_flows_cannot_starve_old_backlog(self):
        # Starvation regression, observable exactly under flow churn: a
        # fresh single-packet flow every 2.5 ms (40% of an 8 Mb/s link,
        # each spawning a brand-new sub-queue) while an old flow has 400
        # packets queued.  Every new flow gets its one-quantum priority,
        # yet the old backlog must keep draining at the residual rate.
        sched, queue, departed, dropped = build(
            "fq_codel", rate_bps=8_000_000.0, buffer_bytes=1e9,
        )
        for i in range(400):
            queue.enqueue(make_packet(i, flow_id=0))
        for j in range(400):
            sched.schedule(
                j * 0.0025,
                lambda j=j: queue.enqueue(make_packet(1000 + j, flow_id=10 + j)),
            )
        sched.run(until=1e6)
        served_old = [t for s, t in departed if s < 400]
        # Every old packet is accounted for: served, or trimmed by CoDel
        # working on the old flow's standing backlog (never by the churn).
        assert len(served_old) + len(dropped) == 400
        assert all(s < 400 for s, _ in dropped)
        assert len(served_old) >= 380
        assert max(served_old) < 0.75  # drained at ~60% of the link
        # ... while every churning flow's packet still got its priority
        # bump: low delay despite the 400-packet standing backlog.
        new_delays = [t - (s - 1000) * 0.0025 for s, t in departed if s >= 1000]
        assert max(new_delays) < 0.01

    def test_returning_flow_queues_as_old_not_new(self):
        # A sub-queue that empties moves to the old list; if its flow
        # keeps sending while still listed there, the next packet must
        # wait its DRR turn rather than re-enter the priority list.
        sched, queue, departed, _ = build("fq_codel", **self.ORDER_KWARGS)
        for i in range(6):
            queue.enqueue(make_packet(i, flow_id=0))
        # Flow 1's first packet gets the new-flow bump; its second
        # arrives while the drained sub-queue idles on the old list.
        sched.schedule(0.5, lambda: queue.enqueue(make_packet(100, flow_id=1)))
        sched.schedule(2.2, lambda: queue.enqueue(make_packet(101, flow_id=1)))
        sched.run(until=1e6)
        assert [s for s, _ in departed] == [0, 1, 100, 2, 3, 101, 4, 5]


class TestEcnMarking:
    """AQMs CE-mark ECN-capable packets instead of dropping them."""

    def _overload(self, sched, queue, n, gap_s, ecn):
        for i in range(n):
            sched.schedule(
                i * gap_s,
                lambda i=i: queue.enqueue(make_packet(i, ecn=ecn)),
            )

    def test_codel_marks_instead_of_drops(self):
        results = {}
        for ecn in (False, True):
            sched, queue, departed, dropped = build(
                "codel", rate_bps=800_000.0, buffer_bytes=1e9,
            )
            self._overload(sched, queue, 400, 0.005, ecn)
            sched.run(until=1e6)
            results[ecn] = (queue.packets_dropped, queue.packets_marked,
                            len(departed))
        drops_plain, marks_plain, _ = results[False]
        drops_ecn, marks_ecn, served_ecn = results[True]
        assert drops_plain > 0 and marks_plain == 0
        assert marks_ecn > 0 and drops_ecn == 0
        assert served_ecn == 400  # every ECN packet was delivered

    def test_red_marks_instead_of_early_drops(self):
        kwargs = dict(
            rate_bps=8_000.0, buffer_bytes=40_000.0, weight=0.5,
            min_threshold=0.05, max_threshold=0.5, max_drop_probability=0.9,
            seed=3,
        )
        sched, queue, _, dropped = build("red", **kwargs)
        self._overload(sched, queue, 30, 0.01, ecn=True)
        sched.run(until=1e6)
        assert queue.packets_marked > 0
        assert queue.packets_dropped == 0  # buffer never filled

    def test_red_buffer_overflow_still_drops_ecn_packets(self):
        sched, queue, _, dropped = build(
            "red", rate_bps=8_000.0, buffer_bytes=2_000.0, seed=0,
        )
        for i in range(6):
            queue.enqueue(make_packet(i, ecn=True))
        # 1 in service + 2 waiting fit; the rest exceed the hard limit.
        assert queue.packets_dropped == 3

    def test_droptail_never_marks(self):
        sched, queue, _, dropped = build("droptail", buffer_bytes=2_000.0)
        self._overload(sched, queue, 40, 0.01, ecn=True)
        sched.run(until=1e6)
        assert queue.packets_marked == 0
        assert queue.packets_dropped > 0

    def test_marked_packets_counted_as_served_not_dropped(self):
        sched, queue, departed, dropped = build(
            "fq_codel", rate_bps=800_000.0, buffer_bytes=1e9,
        )
        self._overload(sched, queue, 400, 0.005, ecn=True)
        sched.run(until=1e6)
        assert queue.packets_marked > 0
        assert queue.packets_dropped == 0
        assert queue.packets_served == queue.packets_offered == 400
        assert len(departed) == 400 and dropped == []


class TestFactory:
    def test_unknown_discipline_raises(self):
        sched = EventScheduler()
        with pytest.raises(ValueError, match="unknown queue discipline"):
            make_queue("fq", sched, 8000.0, 1000.0, lambda p, t: None, lambda p, t: None)

    def test_unknown_parameter_raises(self):
        sched = EventScheduler()
        with pytest.raises(TypeError):
            make_queue("droptail", sched, 8000.0, 1000.0,
                       lambda p, t: None, lambda p, t: None, target_delay_s=0.01)

    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_registry_names_match_classes(self, discipline):
        assert QUEUE_DISCIPLINES[discipline].name == discipline
