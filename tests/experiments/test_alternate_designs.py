"""Tests for the emulated switchback / event-study designs (Section 5)."""

import pytest

from repro.experiments import (
    PairedLinkExperiment,
    compare_designs,
    emulate_event_study,
    emulate_switchback,
    run_aa_calibration,
)
from repro.experiments.alternate_designs import emulate_day_split
from repro.workload import WorkloadConfig


@pytest.fixture(scope="module")
def outcome():
    config = WorkloadConfig(sessions_at_peak=220, n_accounts=3000, seed=17)
    return PairedLinkExperiment(config=config).run()


@pytest.fixture(scope="module")
def comparison(outcome):
    return compare_designs(
        outcome.experiment_table,
        (0, 1, 2, 3, 4),
        outcome.estimates["tte"],
        baselines=outcome.baselines,
    )


class TestEmulationMechanics:
    def test_day_split_requires_non_empty_arms(self, outcome):
        with pytest.raises(ValueError):
            emulate_day_split(outcome.experiment_table, [], [0])

    def test_day_split_rejects_overlap(self, outcome):
        with pytest.raises(ValueError):
            emulate_day_split(outcome.experiment_table, [0, 1], [1, 2])

    def test_day_split_rejects_empty_selection(self, outcome):
        with pytest.raises(ValueError):
            emulate_day_split(outcome.experiment_table, [40], [41])

    def test_switchback_uses_alternating_days_by_default(self, outcome):
        estimates = emulate_switchback(
            outcome.experiment_table,
            (0, 1, 2, 3, 4),
            metrics=("throughput_mbps",),
            baselines=outcome.baselines,
        )
        assert "throughput_mbps" in estimates

    def test_event_study_uses_midpoint_switch_by_default(self, outcome):
        estimates = emulate_event_study(
            outcome.experiment_table,
            (0, 1, 2, 3, 4),
            metrics=("throughput_mbps",),
            baselines=outcome.baselines,
        )
        assert "throughput_mbps" in estimates


class TestFigure10Shape:
    def test_rows_cover_all_designs(self, comparison):
        rows = comparison.rows(["throughput_mbps", "min_rtt_ms"])
        for row in rows:
            for design in ("paired_link", "switchback", "event_study"):
                assert design in row

    def test_switchback_recovers_paired_link_tte_for_key_metrics(self, comparison):
        for metric in ("min_rtt_ms", "video_bitrate_kbps", "play_delay_s"):
            assert comparison.switchback_covers_paired_link(metric), metric

    def test_switchback_sign_matches_paired_link(self, comparison):
        for metric in ("throughput_mbps", "min_rtt_ms", "video_bitrate_kbps"):
            sb = comparison.switchback[metric].relative.estimate
            pl = comparison.paired_link[metric].relative.estimate
            assert (sb > 0) == (pl > 0), metric

    def test_switchback_intervals_wider_than_paired_link(self, comparison):
        # Half the data -> wider confidence intervals.
        for metric in ("throughput_mbps", "min_rtt_ms"):
            assert (
                comparison.switchback[metric].relative.width
                >= comparison.paired_link[metric].relative.width * 0.8
            )

    def test_event_study_less_accurate_than_switchback_for_throughput(self, comparison):
        pl = comparison.paired_link["throughput_mbps"].relative.estimate
        sb_err = abs(comparison.switchback["throughput_mbps"].relative.estimate - pl)
        es_err = abs(comparison.event_study["throughput_mbps"].relative.estimate - pl)
        assert es_err >= sb_err * 0.5  # event study is at best comparable


class TestAACalibration:
    def test_switchback_split_has_no_large_false_positive(self, outcome):
        estimates = run_aa_calibration(
            outcome.aa_table,
            (0, 1, 2, 3, 4),
            treatment_days=(0, 2, 4),
            metrics=("throughput_mbps", "min_rtt_ms", "video_bitrate_kbps"),
        )
        for metric, estimate in estimates.items():
            assert abs(estimate.relative_percent) < 10.0, metric

    def test_aa_analysis_returns_requested_metrics(self, outcome):
        estimates = run_aa_calibration(
            outcome.aa_table, (0, 1, 2, 3, 4), treatment_days=(1, 3),
            metrics=("throughput_mbps",),
        )
        assert set(estimates) == {"throughput_mbps"}
