"""Tests for the packet-level allocation sweep harness."""

import pytest

from repro.netsim.packet.network import PathConfig, parking_lot_path, parking_lot_queues
from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep
from repro.runner.cache import ResultCache


class SpecRecorder:
    """Stand-in executor capturing the specs a sweep would run."""

    def __init__(self):
        self.specs = []

    def map(self, specs):
        self.specs = list(specs)
        return [None] * len(specs)


@pytest.fixture(scope="module")
def connection_sweep():
    """A small connections sweep: endpoints plus the 50% allocation."""
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
        control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
        allocations=(0, 2, 4),
        capacity_mbps=30.0,
        duration_s=12.0,
        warmup_s=4.0,
    )


class TestPacketSweep:
    def test_requested_allocations_present(self, connection_sweep):
        assert sorted(connection_sweep.results) == [0, 2, 4]

    def test_curve_endpoints_defined(self, connection_sweep):
        curve = connection_sweep.curve("throughput_mbps")
        assert 0.0 in [p for p in curve.allocations]
        assert 1.0 in [p for p in curve.allocations]

    def test_ab_estimate_shows_connection_advantage(self, connection_sweep):
        ab = connection_sweep.ab_estimate("throughput_mbps", 0.5)
        control = connection_sweep.curve("throughput_mbps").mu_control(0.5)
        assert ab / control > 0.4  # treated apps get a clear advantage

    def test_throughput_tte_is_small(self, connection_sweep):
        tte = connection_sweep.tte("throughput_mbps")
        baseline = connection_sweep.curve("throughput_mbps").mu_control(0.0)
        assert abs(tte) / baseline < 0.15

    def test_retransmit_curve_available(self, connection_sweep):
        curve = connection_sweep.curve("retransmit_fraction")
        assert curve.mu_control(0.0) >= 0.0

    def test_unknown_metric_raises(self, connection_sweep):
        with pytest.raises(KeyError):
            connection_sweep.curve("nope")

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError):
            run_packet_sweep(
                2,
                treatment_factory=lambda i: FlowConfig(i),
                control_factory=lambda i: FlowConfig(i),
                allocations=(5,),
            )

    def test_invalid_n_units_raises(self):
        with pytest.raises(ValueError):
            run_packet_sweep(
                0,
                treatment_factory=lambda i: FlowConfig(i),
                control_factory=lambda i: FlowConfig(i),
            )


class TestLossRateComposition:
    """Regression: ``loss_rate`` must compose with factory-supplied paths
    instead of being silently ignored."""

    def _specs(self, factory, loss_rate):
        recorder = SpecRecorder()
        run_packet_sweep(
            2,
            treatment_factory=factory,
            control_factory=factory,
            allocations=(1,),
            loss_rate=loss_rate,
            seed=3,
            executor=recorder,
        )
        (spec,) = recorder.specs
        return spec

    def test_factory_path_without_loss_picks_up_sweep_rate(self):
        factory = lambda i: FlowConfig(i, path=PathConfig(rtt_ms=40.0))  # noqa: E731
        spec = self._specs(factory, loss_rate=0.02)
        for flow in spec.params["flows"]:
            assert flow.path.loss_rate == 0.02
            assert flow.path.rtt_ms == 40.0  # the rest of the path survives

    def test_explicit_factory_loss_rate_wins(self):
        factory = lambda i: FlowConfig(i, path=PathConfig(loss_rate=0.3))  # noqa: E731
        spec = self._specs(factory, loss_rate=0.02)
        for flow in spec.params["flows"]:
            assert flow.path.loss_rate == 0.3

    def test_no_factory_path_still_gets_loss_segment(self):
        spec = self._specs(lambda i: FlowConfig(i), loss_rate=0.05)
        for flow in spec.params["flows"]:
            assert flow.path.loss_rate == 0.05

    def test_composed_loss_actually_drops_packets(self):
        # Plenty of capacity: without the composed loss segment no packet
        # would ever be lost; with it, losses appear despite empty queues.
        sweep = run_packet_sweep(
            2,
            treatment_factory=lambda i: FlowConfig(i, path=PathConfig(rtt_ms=30.0)),
            control_factory=lambda i: FlowConfig(i, path=PathConfig(rtt_ms=30.0)),
            allocations=(1,),
            capacity_mbps=100.0,
            duration_s=5.0,
            warmup_s=1.0,
            loss_rate=0.03,
            seed=1,
        )
        result = sweep.results[1]
        assert sum(f.packets_lost for f in result.flows) > 0
        assert result.total_drops > sum(result.queue_drops.values())


class TestInertSeedNormalization:
    """Regression: a seed with no RNG consumer must not enter the content
    key (it used to split the cache across identical replications)."""

    def _spec_seed(self, seed=7, **sweep_kwargs):
        recorder = SpecRecorder()
        run_packet_sweep(
            2,
            treatment_factory=lambda i: FlowConfig(i),
            control_factory=lambda i: FlowConfig(i),
            allocations=(1,),
            seed=seed,
            executor=recorder,
            **sweep_kwargs,
        )
        return recorder.specs[0].seed

    def test_seed_normalized_for_loss_free_droptail(self):
        assert self._spec_seed() is None

    def test_seed_normalized_for_codel_and_fq_codel(self):
        assert self._spec_seed(queue_discipline="codel") is None
        assert self._spec_seed(queue_discipline="fq_codel") is None

    def test_seed_kept_when_red_consumes_it(self):
        assert self._spec_seed(queue_discipline="red") == 7

    def test_seed_normalized_when_red_seed_pinned_in_params(self):
        assert self._spec_seed(
            queue_discipline="red", queue_params={"seed": 5}
        ) is None

    def test_seed_kept_for_lossy_paths(self):
        assert self._spec_seed(loss_rate=0.01) == 7

    def test_seed_kept_for_lossy_cross_traffic(self):
        cross = (FlowConfig(100, path=PathConfig(loss_rate=0.02)),)
        assert self._spec_seed(cross_traffic=cross) == 7

    def test_seed_kept_for_seeded_extra_queue(self):
        extra = parking_lot_queues(2, 20.0, discipline="red")
        assert self._spec_seed(extra_queues=extra) == 7

    def test_different_seeds_share_cache_when_inert(self, tmp_path):
        cache = ResultCache(tmp_path)

        def run(seed):
            return run_packet_sweep(
                2,
                treatment_factory=lambda i: FlowConfig(i, connections=2),
                control_factory=lambda i: FlowConfig(i),
                allocations=(0, 2),
                capacity_mbps=20.0,
                duration_s=4.0,
                warmup_s=1.0,
                seed=seed,
                cache=cache,
            )

        first = run(1)
        assert cache.hits == 0 and cache.misses == 2
        second = run(2)
        assert cache.hits == 2  # both arms reused despite the new seed
        assert first.results == second.results


class TestSweepTopologyKnobs:
    def test_extra_queues_and_cross_traffic_reach_the_arms(self):
        n_segments = 3
        sweep = run_packet_sweep(
            2,
            treatment_factory=lambda i: FlowConfig(
                i, connections=2, path=parking_lot_path(i, n_segments)
            ),
            control_factory=lambda i: FlowConfig(
                i, path=parking_lot_path(i, n_segments)
            ),
            allocations=(1,),
            capacity_mbps=20.0,
            duration_s=4.0,
            warmup_s=1.0,
            extra_queues=parking_lot_queues(n_segments, 20.0),
            cross_traffic=(
                FlowConfig(100, path=parking_lot_path(1, n_segments, span=1)),
            ),
        )
        result = sweep.results[1]
        assert [f.flow_id for f in result.flows] == [0, 1]
        assert {"seg0", "seg1", "seg2"} <= set(result.queue_drops)
