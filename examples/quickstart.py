"""Quickstart: congestion interference in a ten-flow lab experiment.

Runs the paper's parallel-connections experiment (Figure 2a) on the fluid
simulator, then shows why the naive A/B estimate is misleading:

* every A/B test says "two connections double your throughput";
* the total treatment effect says "switching everyone changes nothing,
  except retransmissions get much worse";
* the spillover says "your gain came out of everyone else's share".

Run with:  python examples/quickstart.py
"""

from repro.core.estimands import sutva_holds
from repro.experiments import run_connections_experiment
from repro.reporting import format_percent, format_table


def main() -> None:
    figure = run_connections_experiment(n_units=10)

    print("Lab sweep: 10 applications, treatment = 2 TCP connections, control = 1")
    print()
    rows = []
    for row in figure.rows:
        rows.append(
            [
                row.n_treated,
                "-"
                if row.treatment_throughput_mbps is None
                else f"{row.treatment_throughput_mbps:.0f}",
                "-"
                if row.control_throughput_mbps is None
                else f"{row.control_throughput_mbps:.0f}",
                "-" if row.treatment_retransmit is None else f"{row.treatment_retransmit:.4f}",
                "-" if row.control_retransmit is None else f"{row.control_retransmit:.4f}",
            ]
        )
    print(
        format_table(
            ["# treated", "T thr (Mb/s)", "C thr (Mb/s)", "T retx", "C retx"], rows
        )
    )
    print()

    throughput = figure.throughput_curve
    retransmit = figure.retransmit_curve
    control_throughput = throughput.mu_control(0.0)
    control_retransmit = retransmit.mu_control(0.0)

    print("What a naive 10% A/B test reports:")
    print(
        "  throughput: "
        + format_percent(throughput.ate(0.1) / control_throughput)
        + ", retransmissions: "
        + format_percent(retransmit.ate(0.1) / control_retransmit)
    )
    print("What actually happens if everyone switches (TTE):")
    print(
        "  throughput: "
        + format_percent(throughput.tte() / control_throughput)
        + ", retransmissions: "
        + format_percent(retransmit.tte() / control_retransmit)
    )
    print("Spillover on the last single-connection application (p = 0.9):")
    print("  throughput: " + format_percent(throughput.spillover(0.9) / control_throughput))
    print()
    print(f"SUTVA holds on this data: {sutva_holds(throughput, tolerance=0.01, relative=True)}")
    print("Conclusion: the A/B estimate is an artifact of congestion interference.")


if __name__ == "__main__":
    main()
