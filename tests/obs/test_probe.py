"""Unit tests for the in-simulation probe layer."""

import pytest

from repro.obs import Probe, ProbeConfig, ProbeLog, ProbeRecord, TraceRecorder


class TestProbeConfig:
    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            ProbeConfig(interval_s=0.0)
        with pytest.raises(ValueError, match="interval_s"):
            ProbeConfig(interval_s=-1.0)

    def test_rejects_zero_max_samples(self):
        with pytest.raises(ValueError, match="max_samples"):
            ProbeConfig(interval_s=1.0, max_samples=0)

    def test_defaults(self):
        config = ProbeConfig(interval_s=0.5)
        assert config.include_queues and config.include_flows
        assert config.max_samples == 100_000


class TestSampleTimes:
    def test_multiples_of_interval_up_to_duration(self):
        probe = Probe(ProbeConfig(interval_s=0.5))
        assert probe.sample_times(2.0) == [0.5, 1.0, 1.5, 2.0]

    def test_no_float_drift(self):
        # 0.1 is not representable; k * 0.1 must still yield exactly the
        # duration/interval count (accumulation would drop or add a tick).
        probe = Probe(ProbeConfig(interval_s=0.1))
        times = probe.sample_times(30.0)
        assert len(times) == 300
        assert times[-1] == pytest.approx(30.0)

    def test_duration_shorter_than_interval_yields_nothing(self):
        assert Probe(ProbeConfig(interval_s=5.0)).sample_times(2.0) == []

    def test_max_samples_caps_and_flags_truncation(self):
        probe = Probe(ProbeConfig(interval_s=0.5, max_samples=3))
        assert probe.sample_times(10.0) == [0.5, 1.0, 1.5]
        assert probe.log().truncated is True

    def test_untruncated_log_not_flagged(self):
        probe = Probe(ProbeConfig(interval_s=1.0))
        probe.sample_times(3.0)
        assert probe.log().truncated is False


class TestProbeSampling:
    def _sampled(self):
        probe = Probe(ProbeConfig(interval_s=1.0))
        for t in (1.0, 2.0):
            probe.sample(
                t,
                queues={"b": {"occupancy_packets": t}, "a": {"occupancy_packets": 0.0}},
                flows={2: {"cwnd": 10.0 * t}, 1: {"cwnd": 4.0}},
            )
        return probe.log()

    def test_records_sorted_queues_then_flows_per_instant(self):
        log = self._sampled()
        first_instant = [(r.kind, r.name) for r in log.records if r.t == 1.0]
        assert first_instant == [
            ("queue", "a"),
            ("queue", "b"),
            ("flow", "conn1"),
            ("flow", "conn2"),
        ]

    def test_log_helpers(self):
        log = self._sampled()
        assert log.sample_times == (1.0, 2.0)
        assert log.names("queue") == ("a", "b")
        assert log.names("flow") == ("conn1", "conn2")
        assert log.series("queue", "b", "occupancy_packets") == [(1.0, 1.0), (2.0, 2.0)]
        assert log.series("flow", "conn2", "cwnd") == [(1.0, 10.0), (2.0, 20.0)]
        assert log.series("flow", "conn2", "missing") == []

    def test_include_flags_filter_kinds(self):
        probe = Probe(ProbeConfig(interval_s=1.0, include_flows=False))
        probe.sample(1.0, queues={"q": {"x": 1.0}}, flows={0: {"cwnd": 1.0}})
        assert [r.kind for r in probe.log().records] == ["queue"]

        probe = Probe(ProbeConfig(interval_s=1.0, include_queues=False))
        probe.sample(1.0, queues={"q": {"x": 1.0}}, flows={0: {"cwnd": 1.0}})
        assert [r.kind for r in probe.log().records] == ["flow"]

    def test_snapshot_copied_not_aliased(self):
        probe = Probe(ProbeConfig(interval_s=1.0))
        fields = {"x": 1.0}
        probe.sample(1.0, queues={"q": fields}, flows={})
        fields["x"] = 99.0
        assert probe.log().records[0].fields["x"] == 1.0


class TestTraceRecorder:
    def test_cap_drops_and_flags(self):
        recorder = TraceRecorder(max_records=2)
        for t in (1.0, 2.0, 3.0):
            recorder.record(t, "queue", "q", {"x": t})
        assert len(recorder.records) == 2
        assert recorder.truncated is True

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError, match="max_records"):
            TraceRecorder(max_records=0)


class TestProbeLogDefaults:
    def test_empty_log(self):
        log = ProbeLog(config=ProbeConfig(interval_s=1.0))
        assert log.records == ()
        assert log.sample_times == ()
        assert log.names("queue") == ()

    def test_record_fields_are_plain(self):
        record = ProbeRecord(t=1.0, kind="queue", name="q", fields={"x": 2.0})
        assert record.fields["x"] == 2.0
