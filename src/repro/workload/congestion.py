"""Link-hour congestion model.

The peering link congests when the aggregate offered load approaches its
capacity: a standing queue builds, latency rises, loss appears, and every
session's achievable throughput drops.  Crucially, the congestion state is
a function of the *total* load on the link — capped and uncapped sessions
sharing a link therefore experience (nearly) the same conditions, which is
the interference pathway that biases naive A/B tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LinkHourState", "CongestionModel"]


@dataclass(frozen=True)
class LinkHourState:
    """Congestion conditions on one link during one hour.

    Attributes
    ----------
    utilization:
        Offered load divided by capacity.
    congested:
        True when the link is in its congested regime.
    throughput_factor:
        Fraction of a session's uncongested throughput actually achievable
        (1.0 when uncongested, ``capacity / offered`` when overloaded).
    queueing_delay_ms:
        Standing-queue delay added to every packet's RTT.
    loss_rate:
        Fraction of bytes lost (and therefore retransmitted) due to
        congestion, excluding the transmission-error floor.
    """

    utilization: float
    congested: bool
    throughput_factor: float
    queueing_delay_ms: float
    loss_rate: float


@dataclass(frozen=True)
class CongestionModel:
    """Maps offered load on a link to that hour's congestion state.

    Parameters
    ----------
    capacity_gbps:
        Link capacity (paper: 100 Gb/s peering links).
    congestion_onset_utilization:
        Utilization above which the standing queue starts to build.
    max_queueing_delay_ms:
        Queueing delay when the link is heavily overloaded (deep buffers on
        peering routers produce tens of milliseconds of standing queue).
    max_congestion_loss:
        Congestive loss rate in the heavily overloaded regime.
    overload_scale:
        Amount of overload (utilization above onset) at which delay and
        loss reach roughly two thirds of their maxima.
    throughput_degradation_exponent:
        Exponent applied to ``1 / utilization`` when the link is overloaded.
        The value 1 corresponds to pure fair sharing of the capacity;
        values above 1 capture the additional per-session degradation a
        congested video workload experiences (timeouts, ramp-up losses,
        head-of-line blocking), matching the sharp peak-hour throughput
        drop visible in the paper's Figure 6.
    """

    capacity_gbps: float = 100.0
    congestion_onset_utilization: float = 0.88
    max_queueing_delay_ms: float = 85.0
    max_congestion_loss: float = 0.003
    overload_scale: float = 0.15
    throughput_degradation_exponent: float = 3.0

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError("capacity_gbps must be positive")
        if not 0.0 < self.congestion_onset_utilization <= 1.0:
            raise ValueError("congestion_onset_utilization must be in (0, 1]")
        if self.max_queueing_delay_ms < 0:
            raise ValueError("max_queueing_delay_ms must be non-negative")
        if not 0.0 <= self.max_congestion_loss < 1.0:
            raise ValueError("max_congestion_loss must be in [0, 1)")
        if self.overload_scale <= 0:
            raise ValueError("overload_scale must be positive")
        if self.throughput_degradation_exponent < 1.0:
            raise ValueError("throughput_degradation_exponent must be at least 1")

    def state_for_load(self, offered_gbps: float) -> LinkHourState:
        """Congestion state when ``offered_gbps`` of traffic wants the link."""
        if offered_gbps < 0:
            raise ValueError("offered load must be non-negative")
        utilization = offered_gbps / self.capacity_gbps
        onset = self.congestion_onset_utilization
        if utilization <= onset:
            return LinkHourState(
                utilization=utilization,
                congested=False,
                throughput_factor=1.0,
                queueing_delay_ms=0.0,
                loss_rate=0.0,
            )
        # Overload regime: throughput degrades as capacity / offered, and the
        # standing queue / loss saturate smoothly with the amount of overload.
        overload = utilization - onset
        saturation = overload / (overload + self.overload_scale)
        throughput_factor = min(
            1.0, (1.0 / utilization) ** self.throughput_degradation_exponent
        )
        return LinkHourState(
            utilization=utilization,
            congested=True,
            throughput_factor=throughput_factor,
            queueing_delay_ms=self.max_queueing_delay_ms * saturation,
            loss_rate=self.max_congestion_loss * saturation,
        )
