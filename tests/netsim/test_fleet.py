"""Tests for the sharded packet/fluid fleet engine.

Pins the contracts the fleet layer is built on: deterministic balanced
assignment, the two-pass fluid coupling, non-mutating O(cells)
aggregation, content-key dedupe of identical shards, bit-identical
merged statistics for any ``jobs`` value, and sketch percentiles within
tolerance of the exact per-unit values.
"""

import pickle

import numpy as np
import pytest

from repro.netsim.fleet import (
    CellStats,
    FleetSpec,
    ShardStats,
    cell_key,
    couple_fleet,
    fleet_assignment,
    run_fleet,
    shard_simulation,
    shard_specs,
)
from repro.runner import content_key

#: A congested fleet small enough for unit tests: 6 edges in 2 regions,
#: 10 units each, region links oversubscribed (the default 0.7).
SMALL = FleetSpec(units=60, edges=6, regions=2, duration_s=1.5, warmup_s=0.5, seed=3)

#: An uncongested variant: region links and backbone overprovisioned, so
#: no shard consumes a seed and homogeneous shards dedupe aggressively.
UNCONGESTED = FleetSpec(
    units=60,
    edges=6,
    regions=2,
    region_oversubscription=1.5,
    backbone_oversubscription=1.5,
    rtt_profile_ms=(20.0,),
    duration_s=1.5,
    warmup_s=0.5,
    seed=3,
)


class TestFleetSpec:
    def test_validation_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            FleetSpec(units=0, edges=1)
        with pytest.raises(ValueError):
            FleetSpec(units=4, edges=8)  # more edges than units
        with pytest.raises(ValueError):
            FleetSpec(units=8, edges=4, regions=5)  # more regions than edges
        with pytest.raises(ValueError):
            FleetSpec(units=8, edges=4, granularity="continent")
        with pytest.raises(ValueError):
            FleetSpec(units=8, edges=4, allocation=1.5)
        with pytest.raises(ValueError):
            FleetSpec(units=8, edges=4, duration_s=1.0, warmup_s=2.0)

    def test_units_spread_evenly_over_edges(self):
        spec = FleetSpec(units=11, edges=3, regions=1)
        counts = [spec.units_on_edge(e) for e in range(3)]
        assert counts == [4, 4, 3]
        assert sum(counts) == spec.units
        firsts = [spec.first_unit_on_edge(e) for e in range(3)]
        assert firsts == [0, 4, 8]

    def test_regions_are_contiguous_blocks_covering_every_edge(self):
        spec = FleetSpec(units=100, edges=10, regions=3)
        regions = [spec.region_of(e) for e in range(10)]
        assert regions == sorted(regions)
        assert set(regions) == {0, 1, 2}
        for r in range(3):
            assert [e for e in range(10) if spec.region_of(e) == r] == list(
                spec.edges_in_region(r)
            )

    def test_cluster_size_by_granularity(self):
        base = dict(units=100, edges=10, regions=2)
        assert FleetSpec(granularity="unit", **base).cluster_size() == 1
        assert FleetSpec(granularity="edge", **base).cluster_size() == 10
        assert FleetSpec(granularity="region", **base).cluster_size() == 50


class TestFleetAssignment:
    def test_deterministic_for_a_seed(self):
        assert fleet_assignment(SMALL) == fleet_assignment(SMALL)

    def test_different_seed_changes_assignment(self):
        from dataclasses import replace

        assert fleet_assignment(SMALL) != fleet_assignment(replace(SMALL, seed=4))

    def test_balanced_at_every_granularity(self):
        from dataclasses import replace

        for granularity in ("unit", "edge", "region"):
            spec = replace(SMALL, granularity=granularity)
            masks = fleet_assignment(spec)
            assert [len(m) for m in masks] == [
                spec.units_on_edge(e) for e in range(spec.edges)
            ]
            if granularity == "unit":
                treated_units = sum(sum(m) for m in masks)
                assert treated_units == round(spec.allocation * spec.units)
            elif granularity == "edge":
                uniform = [set(m) for m in masks]
                assert all(len(u) == 1 for u in uniform)
                treated_edges = sum(m[0] for m in masks)
                assert treated_edges == round(spec.allocation * spec.edges)
            else:
                treated_regions = {
                    spec.region_of(e) for e, m in enumerate(masks) if m[0]
                }
                assert len(treated_regions) == round(spec.allocation * spec.regions)
                # Every edge of a treated region is fully treated.
                for e, mask in enumerate(masks):
                    expected = spec.region_of(e) in treated_regions
                    assert set(mask) == {expected}

    def test_degenerate_allocations_are_granularity_independent(self):
        from dataclasses import replace

        for allocation in (0.0, 1.0):
            masks = {
                granularity: fleet_assignment(
                    replace(SMALL, granularity=granularity, allocation=allocation)
                )
                for granularity in ("unit", "edge", "region")
            }
            assert masks["unit"] == masks["edge"] == masks["region"]


class TestCoupling:
    def _weights(self, spec):
        return np.array(
            [
                sum(2 if t else 1 for t in mask)
                for mask in fleet_assignment(spec)
            ],
            dtype=float,
        )

    def test_overprovisioned_fleet_is_uncongested(self):
        coupling = couple_fleet(UNCONGESTED, self._weights(UNCONGESTED))
        assert not coupling.congested
        np.testing.assert_allclose(
            coupling.effective_capacity_mbps, UNCONGESTED.edge_capacity_mbps
        )
        assert (coupling.backbone_loss_rate == 0).all()
        # Uncongested region links add no standing-queue delay.
        np.testing.assert_allclose(coupling.extra_rtt_ms, UNCONGESTED.backbone_rtt_ms)
        assert (coupling.region_utilization < 1).all()

    def test_oversubscribed_regions_squeeze_and_inject_loss(self):
        coupling = couple_fleet(SMALL, self._weights(SMALL))
        assert coupling.congested
        assert (coupling.effective_capacity_mbps < SMALL.edge_capacity_mbps).all()
        assert (coupling.backbone_loss_rate > 0).all()
        assert (coupling.backbone_loss_rate <= 0.02).all()
        # Saturated region links add the standing-queue delay.
        np.testing.assert_allclose(
            coupling.extra_rtt_ms,
            SMALL.backbone_rtt_ms + SMALL.backbone_queue_delay_ms,
        )
        assert (coupling.region_utilization > 1).all()

    def test_region_capacity_is_conserved(self):
        weights = self._weights(SMALL)
        coupling = couple_fleet(SMALL, weights)
        for r in range(SMALL.regions):
            members = list(SMALL.edges_in_region(r))
            granted = float(coupling.effective_capacity_mbps[members].sum())
            capacity = SMALL.region_oversubscription * (
                SMALL.edge_capacity_mbps * len(members)
            )
            assert granted <= capacity + 1e-9

    def test_heavier_edges_win_a_bigger_share(self):
        from dataclasses import replace

        spec = replace(SMALL, granularity="edge")
        weights = self._weights(spec)
        coupling = couple_fleet(spec, weights)
        for r in range(spec.regions):
            members = list(spec.edges_in_region(r))
            heavy = [e for e in members if weights[e] == weights[members].max()]
            light = [e for e in members if weights[e] == weights[members].min()]
            if weights[members].max() > weights[members].min():
                assert (
                    coupling.effective_capacity_mbps[heavy].min()
                    > coupling.effective_capacity_mbps[light].max()
                )

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            couple_fleet(SMALL, np.ones(3))
        with pytest.raises(ValueError):
            couple_fleet(SMALL, np.zeros(SMALL.edges))


class TestAggregation:
    def test_cell_stats_add_and_merge(self):
        a = CellStats()
        b = CellStats()
        for v in (1.0, 2.0, 3.0):
            a.add(v)
        for v in (4.0, 5.0):
            b.add(v)
        merged = a.merge(b)
        assert merged.stats.count == 5
        assert merged.stats.mean == pytest.approx(3.0)
        assert merged.sketch.quantile(0.0) == 1.0
        assert merged.sketch.quantile(1.0) == 5.0
        # Non-mutating: inputs unchanged.
        assert a.stats.count == 3
        assert b.stats.count == 2

    def test_shard_stats_merge_adds_counters_and_unions_cells(self):
        a = ShardStats(units=10, packets=100, drops=5)
        a.cells[cell_key("treated", "throughput_mbps")] = CellStats()
        a.cells[cell_key("treated", "throughput_mbps")].add(2.0)
        b = ShardStats(units=20, packets=200, drops=7)
        b.cells[cell_key("control", "throughput_mbps")] = CellStats()
        b.cells[cell_key("control", "throughput_mbps")].add(1.0)
        merged = a.merge(b)
        assert merged.units == 30
        assert merged.shards == 2
        assert merged.packets == 300
        assert merged.drops == 12
        assert set(merged.cells) == {
            cell_key("treated", "throughput_mbps"),
            cell_key("control", "throughput_mbps"),
        }
        assert merged.cell("treated", "throughput_mbps").stats.count == 1

    def test_merge_is_safe_when_both_sides_are_the_same_object(self):
        # Content-key dedupe can hand the fold the *same* ShardStats for
        # two edges; merging it with itself must not corrupt state.
        a = ShardStats(units=5, packets=10)
        key = cell_key("treated", "throughput_mbps")
        a.cells[key] = CellStats()
        a.cells[key].add(3.0)
        merged = a.merge(a)
        assert merged.units == 10
        assert merged.cells[key].stats.count == 2
        assert a.units == 5
        assert a.cells[key].stats.count == 1


class TestRunFleet:
    def test_merged_statistics_bit_identical_across_jobs(self):
        serial = run_fleet(SMALL, jobs=1)
        parallel = run_fleet(SMALL, jobs=4)
        assert serial.stats == parallel.stats
        assert serial.unique_sims == parallel.unique_sims

    def test_aggregation_memory_is_bounded_by_cells_not_units(self):
        from dataclasses import replace

        # At a compression the small fleet already saturates, 10x the
        # units must not grow the merged result: its size is bounded by
        # cells x sketch size (the compression factor), not the fleet.
        small = run_fleet(replace(SMALL, units=60, sketch_compression=16), jobs=1)
        big = run_fleet(replace(SMALL, units=600, sketch_compression=16), jobs=1)
        assert big.stats.units == 10 * small.stats.units
        small_size = len(pickle.dumps(small.stats))
        big_size = len(pickle.dumps(big.stats))
        assert set(big.stats.cells) == set(small.stats.cells)
        assert big_size <= 1.1 * small_size
        for cell in big.stats.cells.values():
            assert len(cell.sketch) <= 16

    def test_identical_shards_are_simulated_once(self):
        from dataclasses import replace

        # Homogeneous uncongested fleet at edge granularity: every shard
        # is all-treated or all-control on identical links with no seed,
        # so 6 edges collapse to 2 distinct simulations.
        spec = replace(UNCONGESTED, granularity="edge")
        specs, _ = shard_specs(spec)
        assert all(s.seed is None for s in specs)
        assert len({content_key(s) for s in specs}) == 2
        result = run_fleet(spec, jobs=1)
        assert result.unique_sims == 2
        assert result.stats.shards == spec.edges
        assert result.stats.units == spec.units

    def test_congested_shards_derive_distinct_seeds(self):
        specs, coupling = shard_specs(SMALL)
        assert coupling.congested
        seeds = [s.seed for s in specs]
        assert all(seed is not None for seed in seeds)
        assert len(set(seeds)) == len(seeds)
        # Seeds are a pure function of (master seed, edge index).
        again, _ = shard_specs(SMALL)
        assert [s.seed for s in again] == seeds

    def test_fleet_result_accessors(self):
        result = run_fleet(SMALL, jobs=1)
        treated = result.mean("treated", "throughput_mbps")
        control = result.mean("control", "throughput_mbps")
        assert result.ab_estimate("throughput_mbps") == pytest.approx(
            treated - control
        )
        assert result.arm_count("treated") + result.arm_count("control") == SMALL.units
        assert result.arm_count("treated", "missing-metric") == 0
        p10 = result.quantile("treated", "throughput_mbps", 0.1)
        p90 = result.quantile("treated", "throughput_mbps", 0.9)
        assert p10 <= treated <= p90

    def test_churn_feeds_the_fct_cell(self):
        from dataclasses import replace

        from repro.netsim.fleet import FCT_CELL

        spec = replace(SMALL, edges=3, units=30, churn_per_s=6.0)
        result = run_fleet(spec, jobs=1)
        assert result.stats.dynamic_flows_started > 0
        assert FCT_CELL in result.stats.cells
        fct = result.stats.cells[FCT_CELL]
        assert fct.stats.count == result.stats.dynamic_flows_completed
        assert fct.sketch.quantile(0.5) > 0


class TestSketchAccuracyOnReferenceFleet:
    def test_fleet_percentiles_match_exact_values(self):
        from dataclasses import replace

        # Re-run every shard raw and pool the exact per-unit throughputs;
        # the fleet's merged sketch must land within 2 % of the value
        # range of the exact percentiles (the tolerance documented in
        # docs/architecture.md).  100 units per edge keeps per-arm samples
        # large enough that interpolation conventions cannot dominate.
        reference = replace(SMALL, units=600)
        result = run_fleet(reference, jobs=1)
        specs, _ = shard_specs(reference)
        exact = {"treated": [], "control": []}
        for spec in specs:
            raw = shard_simulation(
                tuple(spec.params["treated_mask"]),
                treatment_connections=spec.params["treatment_connections"],
                control_connections=spec.params["control_connections"],
                capacity_mbps=spec.params["capacity_mbps"],
                rtt_ms=spec.params["rtt_ms"],
                loss_rate=spec.params["loss_rate"],
                buffer_bdp=spec.params["buffer_bdp"],
                duration_s=spec.params["duration_s"],
                warmup_s=spec.params["warmup_s"],
                seed=spec.seed,
            )
            for flow in raw.flows:
                exact["treated" if flow.treated else "control"].append(
                    flow.throughput_mbps
                )
        for arm, values in exact.items():
            values = np.array(values)
            assert len(values) == result.arm_count(arm)
            spread = float(values.max() - values.min()) or 1.0
            for q in (0.1, 0.25, 0.5, 0.75, 0.9):
                sketch_q = result.quantile(arm, "throughput_mbps", q)
                exact_q = float(np.quantile(values, q))
                assert abs(sketch_q - exact_q) <= 0.02 * spread, (arm, q)
