"""Tests for the packet-level allocation sweep harness."""

import pytest

from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep


@pytest.fixture(scope="module")
def connection_sweep():
    """A small connections sweep: endpoints plus the 50% allocation."""
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
        control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
        allocations=(0, 2, 4),
        capacity_mbps=30.0,
        duration_s=12.0,
        warmup_s=4.0,
    )


class TestPacketSweep:
    def test_requested_allocations_present(self, connection_sweep):
        assert sorted(connection_sweep.results) == [0, 2, 4]

    def test_curve_endpoints_defined(self, connection_sweep):
        curve = connection_sweep.curve("throughput_mbps")
        assert 0.0 in [p for p in curve.allocations]
        assert 1.0 in [p for p in curve.allocations]

    def test_ab_estimate_shows_connection_advantage(self, connection_sweep):
        ab = connection_sweep.ab_estimate("throughput_mbps", 0.5)
        control = connection_sweep.curve("throughput_mbps").mu_control(0.5)
        assert ab / control > 0.4  # treated apps get a clear advantage

    def test_throughput_tte_is_small(self, connection_sweep):
        tte = connection_sweep.tte("throughput_mbps")
        baseline = connection_sweep.curve("throughput_mbps").mu_control(0.0)
        assert abs(tte) / baseline < 0.15

    def test_retransmit_curve_available(self, connection_sweep):
        curve = connection_sweep.curve("retransmit_fraction")
        assert curve.mu_control(0.0) >= 0.0

    def test_unknown_metric_raises(self, connection_sweep):
        with pytest.raises(KeyError):
            connection_sweep.curve("nope")

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError):
            run_packet_sweep(
                2,
                treatment_factory=lambda i: FlowConfig(i),
                control_factory=lambda i: FlowConfig(i),
                allocations=(5,),
            )

    def test_invalid_n_units_raises(self):
        with pytest.raises(ValueError):
            run_packet_sweep(
                0,
                treatment_factory=lambda i: FlowConfig(i),
                control_factory=lambda i: FlowConfig(i),
            )
