"""A/A calibration test.

An A/A test assigns sessions to two groups that both receive the *control*
experience.  Any "effect" measured between the groups is a false positive,
so A/A tests calibrate the analysis pipeline: they detect broken
randomization, mis-specified variance estimates, or pre-existing
differences between targeted networks.  The paper runs an A/A test on the
paired links in the week after the main experiment to confirm that a
switchback design on those links would not have produced false positives
(Section 5.3).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.designs.base import (
    AllocationPlan,
    CellSelector,
    ComparisonSpec,
    ExperimentDesign,
)

__all__ = ["AATestDesign"]


class AATestDesign(ExperimentDesign):
    """An A/A test: a "treatment" group that actually receives control.

    Parameters
    ----------
    allocation:
        Fraction of sessions labelled as the (sham) treatment group.
    """

    name = "aa_test"

    def __init__(self, allocation: float = 0.5):
        if not 0.0 <= allocation <= 1.0:
            raise ValueError("allocation must be in [0, 1]")
        self.allocation = float(allocation)

    #: A/A tests apply no real treatment; substrates should check this flag
    #: and leave the "treated" sessions' behaviour unchanged.
    applies_treatment = False

    def allocation_plan(
        self, links: Sequence[int], days: Sequence[int]
    ) -> AllocationPlan:
        cells = {(link, day): self.allocation for link in links for day in days}
        return AllocationPlan(cells, default=self.allocation)

    def comparisons(
        self, links: Sequence[int], days: Sequence[int]
    ) -> list[ComparisonSpec]:
        links_t = tuple(int(link) for link in links)
        days_t = tuple(int(day) for day in days)
        return [
            ComparisonSpec(
                estimand="aa_null",
                treatment_selector=CellSelector(links_t, days_t, treated=True),
                control_selector=CellSelector(links_t, days_t, treated=False),
                description="A/A comparison; the true effect is zero by construction.",
            )
        ]

    def describe(self) -> str:
        return f"A/A calibration test at allocation p={self.allocation:g}"
