"""Command-line interface: reproduce any of the paper's figures from a shell.

Usage::

    python -m repro list                 # list available figures
    python -m repro fig2a                # parallel-connections lab figure
    python -m repro fig5 --quick         # paired-link treatment-effect table
    python -m repro fig10 --seed 11      # design comparison

Every command prints the same rows/series the corresponding benchmark
asserts on; ``--quick`` shrinks the synthetic workload for faster runs.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.core.units import SESSION_METRICS
from repro.experiments import (
    PairedLinkExperiment,
    compare_designs,
    compare_links_at_baseline,
    run_cc_experiment,
    run_connections_experiment,
    run_pacing_experiment,
)
from repro.reporting import format_table
from repro.workload import WorkloadConfig

__all__ = ["main"]

#: Figures that only need the fluid lab simulator.
LAB_FIGURES = {
    "fig2a": run_connections_experiment,
    "fig2b": run_pacing_experiment,
    "fig3": run_cc_experiment,
}

#: Figures derived from the paired-link workload run.
PAIRED_FIGURES = ("baseline", "fig5", "fig7", "fig8", "fig9", "fig10")


def _print_lab_figure(name: str) -> None:
    figure = LAB_FIGURES[name]()
    print("\n".join(figure.summary_lines()))


def _run_paired(args: argparse.Namespace):
    sessions = 150 if args.quick else 300
    config = WorkloadConfig(sessions_at_peak=sessions, seed=args.seed)
    return PairedLinkExperiment(config=config).run()


def _print_paired_figure(name: str, args: argparse.Namespace) -> None:
    outcome = _run_paired(args)
    if name == "baseline":
        rows = [
            [r.metric, f"{r.relative_percent:+.1f}%", "yes" if r.significant else "no"]
            for r in compare_links_at_baseline(outcome.baseline_table)
        ]
        print(format_table(["metric", "link1 vs link2", "significant"], rows))
    elif name == "fig5":
        rows = [
            [
                row["metric"],
                f"{row['ab_0.05']:+.1f}%",
                f"{row['ab_0.95']:+.1f}%",
                f"{row['tte']:+.1f}%",
                f"{row['spillover']:+.1f}%",
            ]
            for row in outcome.figure5_rows()
        ]
        print(format_table(["metric", "A/B 5%", "A/B 95%", "TTE", "spillover"], rows))
    elif name == "fig7":
        cells = outcome.figure7_cells()
        print(
            format_table(
                ["cell", "throughput (Mb/s)"],
                [
                    ["link 1, capped 95%", f"{cells.link1_treated:.2f}"],
                    ["link 1, uncapped 5%", f"{cells.link1_control:.2f}"],
                    ["link 2, capped 5%", f"{cells.link2_treated:.2f}"],
                    ["link 2, uncapped 95%", f"{cells.link2_control:.2f}"],
                ],
            )
        )
    elif name == "fig8":
        cells = outcome.figure8_cells()
        print(
            format_table(
                ["cell", "min RTT (normalized)"],
                [
                    ["link 1, capped 95%", f"{cells.link1_treated:.3f}"],
                    ["link 1, uncapped 5%", f"{cells.link1_control:.3f}"],
                    ["link 2, capped 5%", f"{cells.link2_treated:.3f}"],
                    ["link 2, uncapped 95%", f"{cells.link2_control:.3f}"],
                ],
            )
        )
    elif name == "fig9":
        split = outcome.figure9_retransmit_split()
        print(
            format_table(
                ["period", "retransmit change"],
                [
                    ["peak", f"{100 * split['peak']:+.1f}%"],
                    ["off-peak", f"{100 * split['off_peak']:+.1f}%"],
                    ["overall TTE", f"{100 * split['overall']:+.1f}%"],
                ],
            )
        )
    elif name == "fig10":
        comparison = compare_designs(
            outcome.experiment_table,
            (0, 1, 2, 3, 4),
            outcome.estimates["tte"],
            baselines=outcome.baselines,
        )
        rows = [
            [
                row["metric"],
                f"{row['paired_link']:+.1f}%",
                f"{row['switchback']:+.1f}%",
                f"{row['event_study']:+.1f}%",
            ]
            for row in comparison.rows(SESSION_METRICS)
        ]
        print(format_table(["metric", "paired link", "switchback", "event study"], rows))
    else:  # pragma: no cover - guarded by argparse choices
        raise KeyError(name)


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures from 'Unbiased Experiments in Congested Networks' (IMC 2021).",
    )
    parser.add_argument(
        "figure",
        choices=["list", *LAB_FIGURES, *PAIRED_FIGURES],
        help="which figure to reproduce ('list' to enumerate)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="use a smaller synthetic workload"
    )
    parser.add_argument("--seed", type=int, default=7, help="workload random seed")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.figure == "list":
        print("lab figures:        " + ", ".join(sorted(LAB_FIGURES)))
        print("paired-link figures: " + ", ".join(PAIRED_FIGURES))
        return 0
    if args.figure in LAB_FIGURES:
        _print_lab_figure(args.figure)
    else:
        _print_paired_figure(args.figure, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
