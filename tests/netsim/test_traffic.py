"""Tests for the dynamic-traffic subsystem (sizes, arrivals, demand,
sources through the simulator)."""

import random

import pytest

from repro.netsim.packet.simulation import FlowConfig, simulate
from repro.netsim.traffic import (
    ConstantDemand,
    DiurnalDemand,
    EmpiricalSizes,
    FixedSizes,
    LogNormalSizes,
    OnOffSource,
    ParetoSizes,
    PoissonArrivals,
    RampDemand,
    StepDemand,
    TraceArrivals,
    TrafficSource,
)
from repro.workload.demand import DiurnalDemandModel


class TestSizeSamplers:
    def test_fixed_sizes_degenerate(self):
        sampler = FixedSizes(1234.0)
        rng = random.Random(0)
        assert sampler.sample(rng) == 1234.0
        assert sampler.mean_bytes() == 1234.0

    def test_pareto_respects_floor_and_mean(self):
        sampler = ParetoSizes(min_bytes=10_000.0, alpha=2.5)
        rng = random.Random(1)
        draws = [sampler.sample(rng) for _ in range(4000)]
        assert min(draws) >= 10_000.0
        empirical = sum(draws) / len(draws)
        assert empirical == pytest.approx(sampler.mean_bytes(), rel=0.1)

    def test_pareto_heavy_tail_mean_infinite_at_alpha_1(self):
        assert ParetoSizes(min_bytes=1.0, alpha=0.9).mean_bytes() == float("inf")

    def test_lognormal_mean(self):
        sampler = LogNormalSizes(median_bytes=50_000.0, sigma=0.5)
        rng = random.Random(2)
        draws = [sampler.sample(rng) for _ in range(4000)]
        assert sum(draws) / len(draws) == pytest.approx(sampler.mean_bytes(), rel=0.1)

    def test_empirical_interpolates_between_order_statistics(self):
        sampler = EmpiricalSizes((100.0, 200.0, 300.0))
        rng = random.Random(3)
        draws = [sampler.sample(rng) for _ in range(2000)]
        assert all(100.0 <= d <= 300.0 for d in draws)
        assert sum(draws) / len(draws) == pytest.approx(200.0, rel=0.1)

    def test_empirical_single_observation(self):
        sampler = EmpiricalSizes((42.0,))
        assert sampler.sample(random.Random(0)) == 42.0

    def test_sampler_validation(self):
        with pytest.raises(ValueError):
            FixedSizes(-1.0)
        with pytest.raises(ValueError):
            ParetoSizes(min_bytes=0.0)
        with pytest.raises(ValueError):
            ParetoSizes(alpha=0.0)
        with pytest.raises(ValueError):
            LogNormalSizes(median_bytes=-5.0)
        with pytest.raises(ValueError):
            EmpiricalSizes(())

    def test_samplers_deterministic_given_rng(self):
        for sampler in (
            ParetoSizes(10_000.0, 1.5),
            LogNormalSizes(20_000.0, 1.0),
            EmpiricalSizes((1.0, 5.0, 9.0)),
        ):
            a = [sampler.sample(random.Random(7)) for _ in range(10)]
            b = [sampler.sample(random.Random(7)) for _ in range(10)]
            assert a == b


class TestArrivalProcesses:
    def test_poisson_rate_approximately_respected(self):
        process = PoissonArrivals(rate_per_s=5.0)
        times = process.arrival_times(random.Random(0), 400.0)
        assert len(times) == pytest.approx(2000, rel=0.1)
        assert all(0.0 <= t < 400.0 for t in times)
        assert times == sorted(times)

    def test_zero_rate_never_arrives(self):
        assert PoissonArrivals(0.0).arrival_times(random.Random(0), 100.0) == []

    def test_poisson_demand_modulation_shifts_mass(self):
        # Demand steps from 0.2x to 3x halfway: the second half must
        # carry ~15x the arrivals of the first.
        process = PoissonArrivals(rate_per_s=4.0)
        demand = StepDemand(times=(100.0,), levels=(0.2, 3.0))
        times = process.arrival_times(random.Random(1), 200.0, demand)
        early = sum(1 for t in times if t < 100.0)
        late = len(times) - early
        assert late > 8 * early

    def test_on_off_bursts_cluster_arrivals(self):
        process = OnOffSource(rate_per_s=50.0, mean_on_s=1.0, mean_off_s=9.0)
        times = process.arrival_times(random.Random(2), 500.0)
        # Duty cycle 10%: the mean rate is ~5/s, far below the on-rate.
        assert len(times) == pytest.approx(0.1 * 50.0 * 500.0, rel=0.25)
        # Arrivals cluster: most consecutive gaps are short (within a
        # burst), a few are long (the off periods).
        gaps = [b - a for a, b in zip(times, times[1:])]
        long_gaps = sum(1 for g in gaps if g > 1.0)
        assert long_gaps < 0.2 * len(gaps)
        assert max(gaps) > 3.0

    def test_trace_replayed_within_horizon(self):
        process = TraceArrivals((0.5, 2.0, 7.5, 11.0))
        assert process.arrival_times(random.Random(0), 10.0) == [0.5, 2.0, 7.5]

    def test_trace_sorted_and_validated(self):
        assert TraceArrivals((3.0, 1.0)).times == (1.0, 3.0)
        with pytest.raises(ValueError):
            TraceArrivals((-1.0,))

    def test_arrivals_deterministic_given_rng(self):
        for process in (
            PoissonArrivals(3.0),
            OnOffSource(rate_per_s=10.0, mean_on_s=1.0, mean_off_s=2.0),
        ):
            a = process.arrival_times(random.Random(5), 50.0)
            b = process.arrival_times(random.Random(5), 50.0)
            assert a == b

    def test_process_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)
        with pytest.raises(ValueError):
            OnOffSource(rate_per_s=1.0, mean_on_s=0.0)


class TestDemandProfiles:
    def test_constant(self):
        profile = ConstantDemand(1.5)
        assert profile.multiplier(0.0) == 1.5
        assert profile.max_multiplier(100.0) == 1.5

    def test_step_levels_and_envelope(self):
        profile = StepDemand(times=(10.0, 20.0), levels=(1.0, 4.0, 0.5))
        assert profile.multiplier(5.0) == 1.0
        assert profile.multiplier(10.0) == 4.0
        assert profile.multiplier(25.0) == 0.5
        assert profile.max_multiplier(5.0) == 1.0
        assert profile.max_multiplier(15.0) == 4.0

    def test_step_validation(self):
        with pytest.raises(ValueError):
            StepDemand(times=(1.0,), levels=(1.0,))
        with pytest.raises(ValueError):
            StepDemand(times=(2.0, 1.0), levels=(1.0, 1.0, 1.0))

    def test_ramp_interpolates(self):
        profile = RampDemand(start_level=1.0, end_level=3.0, t0=10.0, t1=20.0)
        assert profile.multiplier(0.0) == 1.0
        assert profile.multiplier(15.0) == pytest.approx(2.0)
        assert profile.multiplier(30.0) == 3.0
        assert profile.max_multiplier(12.0) >= profile.multiplier(12.0)

    def test_diurnal_bridges_workload_model(self):
        model = DiurnalDemandModel()
        profile = DiurnalDemand(model=model, seconds_per_day=24.0)
        # One simulated second per model hour: hour 20 is the evening
        # peak of day 0 (a Wednesday by default).
        assert profile.multiplier(20.5) == model.relative_demand(0, 20)
        assert profile.multiplier(3.5) == model.relative_demand(0, 3)
        # Day 4 of a Wednesday start is Sunday: the weekend boost applies.
        assert profile.multiplier(4 * 24.0 + 12.5) == model.relative_demand(4, 12)
        assert profile.multiplier(4 * 24.0 + 12.5) > model.hourly_shape[12]

    def test_diurnal_envelope_dominates(self):
        profile = DiurnalDemand(seconds_per_day=48.0)
        horizon = 7 * 48.0
        peak = max(profile.multiplier(t / 10.0) for t in range(int(horizon * 10)))
        assert profile.max_multiplier(horizon) >= peak


class TestTrafficSourceThroughSimulate:
    def _run(self, seed=3, **kwargs):
        source = TrafficSource(
            arrivals=PoissonArrivals(3.0),
            sizes=FixedSizes(60_000.0),
            label="bg",
            **kwargs,
        )
        return simulate(
            [FlowConfig(0)],
            capacity_mbps=20.0,
            duration_s=8.0,
            warmup_s=2.0,
            traffic_sources=[source],
            seed=seed,
        )

    def test_dynamic_flows_spawn_complete_and_report(self):
        result = self._run()
        stats = result.traffic["bg"]
        assert stats.flows_started > 10
        assert 0 < stats.flows_completed <= stats.flows_started
        assert len(stats.completion_times_s) == stats.flows_completed
        assert all(fct > 0 for fct in stats.completion_times_s)
        assert stats.bytes_acked > 0
        assert stats.mean_fct_s() > 0
        assert stats.p95_fct_s() >= stats.mean_fct_s() * 0.5

    def test_dynamic_flows_are_unmeasured(self):
        result = self._run()
        assert [f.flow_id for f in result.flows] == [0]

    def test_churn_contends_with_measured_flow(self):
        quiet = simulate(
            [FlowConfig(0)], capacity_mbps=20.0, duration_s=8.0, warmup_s=2.0
        )
        churny = self._run()
        assert (
            churny.flow(0).throughput_mbps < 0.95 * quiet.flow(0).throughput_mbps
        )

    def test_seeded_runs_bit_identical(self):
        assert self._run(seed=11) == self._run(seed=11)

    def test_different_seeds_differ(self):
        assert self._run(seed=11) != self._run(seed=12)

    def test_aggregate_helpers(self):
        result = self._run()
        started, completed = result.dynamic_flow_counts()
        assert started == result.traffic["bg"].flows_started
        assert completed == result.traffic["bg"].flows_completed
        assert result.mean_dynamic_fct_s() == result.traffic["bg"].mean_fct_s()

    def test_no_sources_keeps_result_static(self):
        static = simulate(
            [FlowConfig(0)], capacity_mbps=20.0, duration_s=6.0, warmup_s=2.0
        )
        empty = simulate(
            [FlowConfig(0)],
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            traffic_sources=[],
        )
        assert static == empty
        assert static.traffic == {}
        assert static.mean_dynamic_fct_s() is None

    def test_duplicate_labels_rejected(self):
        source = TrafficSource(
            arrivals=PoissonArrivals(1.0), sizes=FixedSizes(1000.0), label="x"
        )
        with pytest.raises(ValueError, match="label"):
            simulate(
                [FlowConfig(0)],
                capacity_mbps=10.0,
                duration_s=2.0,
                warmup_s=1.0,
                traffic_sources=[source, source],
            )

    def test_unknown_queue_in_source_path_rejected(self):
        from repro.netsim.packet.network import PathConfig

        source = TrafficSource(
            arrivals=PoissonArrivals(1.0),
            sizes=FixedSizes(1000.0),
            path=PathConfig(queues=("nope",)),
        )
        with pytest.raises(KeyError, match="nope"):
            simulate(
                [FlowConfig(0)],
                capacity_mbps=10.0,
                duration_s=2.0,
                warmup_s=1.0,
                traffic_sources=[source],
            )

    def test_demand_ramp_modulates_spawn_rate(self):
        low = self._run(demand=ConstantDemand(0.3))
        high = self._run(demand=ConstantDemand(3.0))
        assert (
            high.traffic["bg"].flows_started > 3 * low.traffic["bg"].flows_started
        )

    def test_sources_travel_through_sweep_specs(self):
        # Content-keying: a traffic source must survive canonicalization
        # inside a ScenarioSpec (frozen dataclasses all the way down).
        from repro.runner.spec import ScenarioSpec, content_key

        source = TrafficSource(
            arrivals=OnOffSource(rate_per_s=2.0, mean_on_s=1.0, mean_off_s=1.0),
            sizes=ParetoSizes(40_000.0, 1.5),
            demand=RampDemand(1.0, 2.0, 0.0, 5.0),
        )
        spec = ScenarioSpec(
            task="netsim.packet_arm",
            params={
                "flows": (FlowConfig(0),),
                "capacity_mbps": 20.0,
                "base_rtt_ms": 20.0,
                "buffer_bdp": 1.0,
                "duration_s": 4.0,
                "warmup_s": 1.0,
                "traffic_sources": (source,),
            },
            seed=5,
        )
        assert content_key(spec) == content_key(spec)
        result = spec.run()
        assert "source0" in result.traffic
