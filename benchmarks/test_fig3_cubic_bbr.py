"""Figure 3: Cubic vs BBR A/B tests.

Paper finding: a 10 % BBR allocation looks like a huge throughput win over
Cubic, and a 10 % Cubic allocation (into a BBR world) *also* looks like a
huge win — yet a full deployment of either algorithm yields identical
per-flow throughput.
"""

import pytest
from benchmarks._helpers import run_once

from repro.experiments import run_cc_experiment


def test_fig3_bbr_vs_cubic(benchmark):
    figure = run_once(benchmark, run_cc_experiment, 10, "bbr", "cubic")

    print("\n" + "\n".join(figure.summary_lines()))

    throughput = figure.throughput_curve
    # Minority BBR wins big.
    assert throughput.ate(0.1) / throughput.mu_control(0.1) > 1.0
    # TTE is zero: all-BBR equals all-Cubic.
    assert throughput.tte() == pytest.approx(0.0, abs=1e-6)
    # Negative spillover on Cubic while BBR is the aggressive minority (the
    # classic BBR-unfairness regime: a few BBR flows squeeze many Cubic flows).
    assert throughput.spillover(0.1) < 0.0


def test_fig3_cubic_into_bbr_world(benchmark):
    figure = run_once(benchmark, run_cc_experiment, 10, "cubic", "bbr")
    throughput = figure.throughput_curve
    # Minority Cubic also wins big, and the TTE is still zero.
    assert throughput.ate(0.1) / throughput.mu_control(0.1) > 1.0
    assert throughput.tte() == pytest.approx(0.0, abs=1e-6)
    print(
        f"\nDeploying Cubic at 10% into a BBR world: "
        f"{100 * throughput.ate(0.1) / throughput.mu_control(0.1):+.0f}% "
        f"naive 'improvement', TTE = 0"
    )
