"""Name-resolution helpers shared by the rule families.

Rules reason about *dotted paths*: ``np.random.default_rng`` should be
recognised whether numpy was imported as ``numpy``, ``np``, or via
``from numpy import random``.  :func:`import_table` records what each
local alias refers to; :func:`dotted_path` resolves an expression like
``np.random.default_rng`` back to its canonical ``numpy.random.default_rng``.
"""

from __future__ import annotations

import ast

__all__ = ["import_table", "dotted_path", "decorator_name"]


def import_table(tree: ast.Module) -> dict[str, str]:
    """Map local aliases to the canonical dotted names they import.

    ``import numpy as np``            -> ``{"np": "numpy"}``
    ``from numpy import random``      -> ``{"random": "numpy.random"}``
    ``from time import time as now``  -> ``{"now": "time.time"}``

    Relative imports are recorded with their leading dots stripped; the
    rules only match absolute stdlib/numpy prefixes, so relative aliases
    simply never match.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname is None and "." in alias.name:
                    # ``import numpy.random`` binds the root name only.
                    table[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def dotted_path(
    node: ast.expr, imports: dict[str, str], require_import: bool = False
) -> str | None:
    """Canonical dotted path of an attribute chain, or ``None``.

    Resolves the chain's root name through ``imports`` so aliased
    modules normalise (``np.random.rand`` -> ``numpy.random.rand``).
    By default names that were not imported resolve to themselves,
    letting callers match plain builtins (``set``); with
    ``require_import=True`` such chains resolve to ``None``, so a local
    variable that happens to be called ``random`` never matches the
    stdlib module.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    if require_import and node.id not in imports:
        return None
    root = imports.get(node.id, node.id)
    parts.append(root)
    return ".".join(reversed(parts))


def decorator_name(node: ast.expr) -> str | None:
    """Final name of a decorator expression.

    ``@register_task("x")`` and ``@repro.runner.spec.register_task("x")``
    both resolve to ``register_task``; unrecognisable shapes to ``None``.
    """
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
