"""Figure 5: treatment effects of bitrate capping, by estimator.

Paper finding (qualitative shape reproduced here):

* throughput — naive A/B tests report a small *decrease* (~-5 %) while the
  TTE is a double-digit *increase* and the spillover is strongly positive;
* minimum RTT — naive tests report an increase, the TTE is a large
  decrease (wrong sign again);
* play delay — naive tests see nothing, the TTE is a ~10 % improvement;
* video bitrate and bytes sent drop by tens of percent everywhere;
* the retransmitted-byte fraction rises overall.
"""

from benchmarks._helpers import run_once

from repro.core.units import SESSION_METRICS
from repro.reporting import format_table


def test_fig5_treatment_effect_table(benchmark, paired_outcome):
    rows = run_once(benchmark, paired_outcome.figure5_rows)
    by_metric = {row["metric"]: row for row in rows}

    print(
        "\n"
        + format_table(
            ["metric", "A/B 5%", "A/B 95%", "TTE", "spillover"],
            [
                [
                    row["metric"],
                    f"{row['ab_0.05']:+.1f}%",
                    f"{row['ab_0.95']:+.1f}%",
                    f"{row['tte']:+.1f}%",
                    f"{row['spillover']:+.1f}%",
                ]
                for row in rows
            ],
        )
    )

    assert {row["metric"] for row in rows} == set(SESSION_METRICS)

    throughput = by_metric["throughput_mbps"]
    assert throughput["ab_0.05"] < 3.0 and throughput["ab_0.95"] < 3.0
    assert throughput["tte"] > 3.0
    assert throughput["spillover"] > 5.0

    rtt = by_metric["min_rtt_ms"]
    assert rtt["ab_0.05"] > 0.0          # naive: RTT looks worse
    assert rtt["tte"] < -8.0             # truth: RTT improves a lot
    assert rtt["spillover"] < -8.0

    play = by_metric["play_delay_s"]
    assert abs(play["ab_0.05"]) < 5.0
    assert play["tte"] < -5.0

    bitrate = by_metric["video_bitrate_kbps"]
    assert bitrate["tte"] < -25.0

    assert by_metric["bytes_sent_gb"]["tte"] < -20.0
    assert by_metric["retransmit_fraction"]["tte"] > 0.0
