"""Content-key hygiene rules: KEY001 (frozen specs), KEY002 (inert knobs).

The :class:`~repro.runner.cache.ResultCache` identifies results purely by
content key — a hash of the task name, seed, canonicalised parameters and
package version.  That identity is only trustworthy if

* every ``*Spec``/``*Config`` dataclass that can appear in a spec is
  immutable (``frozen=True``) with immutable defaults, so a keyed value
  cannot drift after hashing (KEY001); and
* a registered task's required parameter surface never grows silently:
  new knobs must be inert at their default, or be recorded in the
  reviewed baseline in :mod:`repro.devtools.lint.config` (KEY002).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.base import Diagnostic, Rule, register_rule
from repro.devtools.lint.config import DEFAULT_CONFIG, RULE_SCOPES, LintConfig
from repro.devtools.lint.names import decorator_name
from repro.devtools.lint.walker import FileContext

__all__ = ["FrozenSpecRule", "InertDefaultRule"]

#: ``default_factory`` values that produce mutable field defaults.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    """The ``@dataclass`` decorator of a class, if present."""
    for dec in node.decorator_list:
        if decorator_name(dec) == "dataclass":
            return dec
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    """Whether a ``@dataclass`` decorator carries ``frozen=True``."""
    if not isinstance(decorator, ast.Call):
        return False
    for kw in decorator.keywords:
        if kw.arg == "frozen":
            return isinstance(kw.value, ast.Constant) and kw.value.value is True
    return False


@register_rule
class FrozenSpecRule(Rule):
    """KEY001: ``*Spec``/``*Config`` dataclasses must be frozen and immutable."""

    code = "KEY001"
    summary = "*Spec/*Config dataclass not frozen=True, or with a mutable default field"
    scopes = RULE_SCOPES["KEY001"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag unfrozen spec dataclasses and mutable field defaults."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not (node.name.endswith("Spec") or node.name.endswith("Config")):
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                continue
            if not _is_frozen(decorator):
                yield self.report(
                    ctx,
                    node,
                    f"dataclass {node.name} is content-keyable by name but not "
                    "frozen=True; spec objects must be immutable once keyed",
                )
            yield from self._check_defaults(ctx, node)

    def _check_defaults(self, ctx: FileContext, node: ast.ClassDef) -> Iterator[Diagnostic]:
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                continue
            value = stmt.value
            if isinstance(value, (ast.List, ast.Dict, ast.Set)):
                yield self.report(
                    ctx,
                    value,
                    f"mutable literal default on field of {node.name}; use an "
                    "immutable default (tuple, frozenset, None)",
                )
            elif isinstance(value, ast.Call) and decorator_name(value.func) == "field":
                for kw in value.keywords:
                    if (
                        kw.arg == "default_factory"
                        and isinstance(kw.value, ast.Name)
                        and kw.value.id in _MUTABLE_FACTORIES
                    ):
                        yield self.report(
                            ctx,
                            value,
                            f"field of {node.name} defaults to a mutable "
                            f"{kw.value.id}; prefer an immutable default, or "
                            "suppress with a justification if the field is "
                            "canonicalised and never mutated",
                        )


@register_rule
class InertDefaultRule(Rule):
    """KEY002: new task parameters must be inert at their default."""

    code = "KEY002"
    summary = (
        "registered task parameter without a default and outside the recorded "
        "baseline (content-key inert-at-default contract)"
    )
    scopes = RULE_SCOPES["KEY002"]

    def __init__(self, config: LintConfig = DEFAULT_CONFIG) -> None:
        super().__init__()
        self.config = config

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag default-less parameters of ``@register_task`` functions."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            task_name = self._task_name(node)
            if task_name is None:
                continue
            yield from self._check_signature(ctx, node, task_name)

    @staticmethod
    def _task_name(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
        for dec in node.decorator_list:
            if decorator_name(dec) == "register_task" and isinstance(dec, ast.Call):
                if dec.args and isinstance(dec.args[0], ast.Constant):
                    value = dec.args[0].value
                    if isinstance(value, str):
                        return value
                return node.name  # dynamic task name: still check the signature
        return None

    def _check_signature(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        task_name: str,
    ) -> Iterator[Diagnostic]:
        args = node.args
        baseline = self.config.task_param_baseline.get(task_name, frozenset())
        positional = args.posonlyargs + args.args
        defaults = args.defaults
        required = positional[: len(positional) - len(defaults)]
        required_kwonly = [
            arg
            for arg, default in zip(args.kwonlyargs, args.kw_defaults)
            if default is None
        ]
        names = {a.arg for a in positional} | {a.arg for a in args.kwonlyargs}
        if "seed" not in names and args.kwarg is None:
            yield self.report(
                ctx,
                node,
                f"task {task_name!r} does not accept a `seed` parameter; every "
                "task must take seed= (possibly ignored) so specs stay uniform",
            )
        for arg in [*required, *required_kwonly]:
            if arg.arg in baseline or arg.arg == "self":
                continue
            yield self.report(
                ctx,
                arg,
                f"parameter {arg.arg!r} of task {task_name!r} has no default: "
                "new spec fields must be inert at their default so existing "
                "content keys survive, or be added to the recorded baseline "
                "in repro/devtools/lint/config.py",
            )
