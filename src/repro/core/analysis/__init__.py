"""Statistical analysis pipeline for experiments at scale.

This subpackage implements Appendix B of the paper:

1. Aggregate per-session outcomes to the hourly level
   (:mod:`repro.core.analysis.aggregation`).
2. Fit an OLS regression of the hourly means on a treatment indicator with
   hour-of-day fixed effects (:mod:`repro.core.analysis.regression`).
3. Compute Newey-West heteroskedasticity-and-autocorrelation-consistent
   standard errors with a lag of two hours
   (:mod:`repro.core.analysis.newey_west`).
4. Report the treatment coefficient, normalized to the global control
   condition (:mod:`repro.core.analysis.pipeline`).

It also provides power calculations (:mod:`repro.core.analysis.power`) and
SUTVA/interference diagnostics (:mod:`repro.core.analysis.interference`).
"""

from repro.core.analysis.aggregation import (
    HourlyAggregate,
    aggregate_by_account,
    aggregate_hourly,
)
from repro.core.analysis.newey_west import newey_west_covariance
from repro.core.analysis.regression import OLSResult, ols, treatment_effect_regression
from repro.core.analysis.pipeline import AnalysisConfig, MetricEstimate, analyze_metric
from repro.core.analysis.power import minimum_detectable_effect, required_sample_size
from repro.core.analysis.interference import (
    InterferenceDiagnostics,
    detect_interference,
)
from repro.core.analysis.sketch import QuantileSketch, StreamingStats

__all__ = [
    "HourlyAggregate",
    "aggregate_by_account",
    "aggregate_hourly",
    "newey_west_covariance",
    "OLSResult",
    "ols",
    "treatment_effect_regression",
    "AnalysisConfig",
    "MetricEstimate",
    "analyze_metric",
    "minimum_detectable_effect",
    "required_sample_size",
    "InterferenceDiagnostics",
    "detect_interference",
    "QuantileSketch",
    "StreamingStats",
]
