"""Bottleneck queue disciplines.

The congestion point of the lab testbed: a queue draining at the link
rate, with a finite buffer.  :class:`QueueDiscipline` owns the service
machinery shared by every discipline — the event-driven drain loop, the
occupancy/served/dropped counters and the departure/drop callbacks — and
leaves two decisions to subclasses:

* *admission* (:meth:`QueueDiscipline._admit`): whether an arriving
  packet enters the buffer (drop-tail's full-buffer check, RED's
  probabilistic early drop);
* *dequeue* (:meth:`QueueDiscipline._next_packet`): which waiting packet
  enters service next (CoDel drops stale packets here, after measuring
  their sojourn time).

Disciplines are registered by name in :data:`QUEUE_DISCIPLINES` so
scenario specs can select them with a plain string; :func:`make_queue`
is the corresponding factory.
"""

from __future__ import annotations

import math
import random
from collections import deque
from collections.abc import Callable

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet

__all__ = [
    "QueueDiscipline",
    "DropTailQueue",
    "REDQueue",
    "CoDelQueue",
    "QUEUE_DISCIPLINES",
    "make_queue",
]


class QueueDiscipline:
    """Base class for bottleneck queues served at a fixed rate.

    Parameters
    ----------
    scheduler:
        The event scheduler driving the simulation.
    rate_bps:
        Drain (link) rate in bits per second.
    buffer_bytes:
        Maximum number of bytes the queue can hold (excluding the packet
        currently being transmitted).  Every discipline enforces this as
        a hard limit; AQM disciplines drop earlier.
    on_departure:
        Callback invoked as ``on_departure(packet, departure_time)`` when a
        packet finishes transmission.
    on_drop:
        Callback invoked as ``on_drop(packet, drop_time)`` when a packet is
        dropped (on arrival, or — for CoDel — at dequeue).
    """

    #: Registry name; subclasses override.
    name = "base"

    #: Whether the discipline's constructor takes a ``seed`` for an internal
    #: RNG.  The network builder forwards its seed to such disciplines.
    uses_seed = False

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be non-negative")
        self._scheduler = scheduler
        self._rate_bps = float(rate_bps)
        self._buffer_bytes = float(buffer_bytes)
        self._on_departure = on_departure
        self._on_drop = on_drop

        #: Waiting packets, each paired with its arrival time.
        self._queue: deque[tuple[Packet, float]] = deque()
        self._queued_bytes = 0.0
        self._busy = False
        self._service_finish_time = 0.0

        #: Total packets offered to the queue (served + dropped + waiting).
        self.packets_offered = 0
        #: Total packets that entered service.
        self.packets_served = 0
        #: Total packets dropped.
        self.packets_dropped = 0
        #: Total bytes that entered service.
        self.bytes_served = 0.0
        #: Maximum queue occupancy observed, in bytes.
        self.max_occupancy_bytes = 0.0

    # -- state ---------------------------------------------------------------

    @property
    def occupancy_bytes(self) -> float:
        """Bytes currently waiting in the buffer (excludes packet in service)."""
        return self._queued_bytes

    @property
    def occupancy_packets(self) -> int:
        """Packets currently waiting in the buffer."""
        return len(self._queue)

    @property
    def buffer_bytes(self) -> float:
        """Hard buffer limit in bytes."""
        return self._buffer_bytes

    @property
    def rate_bps(self) -> float:
        """Drain rate in bits per second."""
        return self._rate_bps

    def queueing_delay(self) -> float:
        """Expected waiting time for a packet arriving now, in seconds.

        Covers the backlogged bytes *and* the residual service time of the
        packet currently on the wire, so an arrival during a transmission
        is not underestimated by up to one serialization time.
        """
        backlog = self._queued_bytes * 8.0 / self._rate_bps
        residual = 0.0
        if self._busy:
            residual = max(self._service_finish_time - self._scheduler.now, 0.0)
        return backlog + residual

    def transmission_time(self, packet: Packet) -> float:
        """Serialization time of one packet at the link rate, in seconds."""
        return packet.size_bytes * 8.0 / self._rate_bps

    # -- discipline hooks ------------------------------------------------------

    def _on_arrival(self, packet: Packet, now: float) -> None:
        """Observe an arrival before the admission decision (RED's EWMA)."""

    def _admit(self, packet: Packet, now: float) -> bool:
        """Decide whether an arriving packet may enter the buffer."""
        raise NotImplementedError

    def _next_packet(self) -> Packet | None:
        """Pop the next packet to serve (FIFO); AQM may drop stale ones here."""
        if not self._queue:
            return None
        packet, _ = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        return packet

    # -- operations -----------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the queue.  Returns True if accepted, False if dropped."""
        now = self._scheduler.now
        self.packets_offered += 1
        self._on_arrival(packet, now)
        if self._busy:
            if not self._admit(packet, now):
                self._drop(packet, now)
                return False
            self._queue.append((packet, now))
            self._queued_bytes += packet.size_bytes
            self.max_occupancy_bytes = max(self.max_occupancy_bytes, self._queued_bytes)
        else:
            self._start_service(packet)
        return True

    def _drop(self, packet: Packet, time: float) -> None:
        self.packets_dropped += 1
        self._on_drop(packet, time)

    def _start_service(self, packet: Packet) -> None:
        self._busy = True
        self.packets_served += 1
        self.bytes_served += packet.size_bytes
        finish = self._scheduler.now + self.transmission_time(packet)
        self._service_finish_time = finish
        self._scheduler.schedule(finish, lambda p=packet: self._finish_service(p))

    def _finish_service(self, packet: Packet) -> None:
        self._on_departure(packet, self._scheduler.now)
        next_packet = self._next_packet()
        if next_packet is not None:
            self._start_service(next_packet)
        else:
            self._busy = False


class DropTailQueue(QueueDiscipline):
    """FIFO queue that drops arrivals once the buffer is full (the default)."""

    name = "droptail"

    def _admit(self, packet: Packet, now: float) -> bool:
        return self._queued_bytes + packet.size_bytes <= self._buffer_bytes


class REDQueue(QueueDiscipline):
    """Random Early Detection (Floyd & Jacobson 1993), simplified.

    Keeps an exponentially weighted moving average of the queue occupancy
    and drops arrivals probabilistically once the average crosses
    ``min_threshold``: the drop probability rises linearly from 0 to
    ``max_drop_probability`` at ``max_threshold`` (with the classic
    ``1/(1 - count·p)`` spreading term), and is 1 above ``max_threshold``.
    The hard ``buffer_bytes`` limit still applies.  All randomness comes
    from ``seed``, so a RED simulation is a pure function of its inputs.

    Parameters
    ----------
    min_threshold, max_threshold:
        EWMA occupancy thresholds as fractions of ``buffer_bytes``.
    max_drop_probability:
        Drop probability when the average reaches ``max_threshold``.
    weight:
        EWMA weight for each arrival's occupancy sample.
    seed:
        Seed of the private drop-decision RNG.
    """

    name = "red"
    uses_seed = True

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
        min_threshold: float = 0.25,
        max_threshold: float = 0.75,
        max_drop_probability: float = 0.1,
        weight: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(scheduler, rate_bps, buffer_bytes, on_departure, on_drop)
        if not 0.0 <= min_threshold < max_threshold <= 1.0:
            raise ValueError("need 0 <= min_threshold < max_threshold <= 1")
        if not 0.0 < max_drop_probability <= 1.0:
            raise ValueError("max_drop_probability must be in (0, 1]")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        self._min_bytes = min_threshold * self._buffer_bytes
        self._max_bytes = max_threshold * self._buffer_bytes
        self._max_p = float(max_drop_probability)
        self._weight = float(weight)
        self._rng = random.Random(seed)
        self._avg_bytes = 0.0
        self._count = -1  # arrivals since the last drop (classic RED spreading)

    def _on_arrival(self, packet: Packet, now: float) -> None:
        self._avg_bytes += self._weight * (self._queued_bytes - self._avg_bytes)

    def _admit(self, packet: Packet, now: float) -> bool:
        if self._queued_bytes + packet.size_bytes > self._buffer_bytes:
            self._count = 0
            return False
        if self._avg_bytes < self._min_bytes:
            self._count = -1
            return True
        if self._avg_bytes >= self._max_bytes:
            self._count = 0
            return False
        self._count += 1
        p_b = self._max_p * (self._avg_bytes - self._min_bytes) / (
            self._max_bytes - self._min_bytes
        )
        p_a = p_b / max(1.0 - self._count * p_b, 1e-9)
        if self._rng.random() < p_a:
            self._count = 0
            return False
        return True


class CoDelQueue(QueueDiscipline):
    """Controlled Delay AQM (Nichols & Jacobson, RFC 8289), simplified.

    Measures each packet's sojourn time at dequeue.  Once the sojourn has
    stayed above ``target_delay_s`` for a full ``interval_s`` the queue
    enters the dropping state and drops packets at increasing frequency
    (``interval / sqrt(count)``) until the delay falls back below target.
    Arrivals are only refused by the hard ``buffer_bytes`` limit.

    Parameters
    ----------
    target_delay_s:
        Acceptable standing queue delay (default 5 ms).
    interval_s:
        Sliding window over which the delay must persist (default 100 ms).
    min_backlog_bytes:
        Never drop while the backlog is at or below this (one MTU).
    """

    name = "codel"

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
        target_delay_s: float = 0.005,
        interval_s: float = 0.1,
        min_backlog_bytes: float = 1500.0,
    ):
        super().__init__(scheduler, rate_bps, buffer_bytes, on_departure, on_drop)
        if target_delay_s <= 0 or interval_s <= 0:
            raise ValueError("target_delay_s and interval_s must be positive")
        self._target_s = float(target_delay_s)
        self._interval_s = float(interval_s)
        self._min_backlog_bytes = float(min_backlog_bytes)
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._count = 0

    def _admit(self, packet: Packet, now: float) -> bool:
        return self._queued_bytes + packet.size_bytes <= self._buffer_bytes

    def _next_packet(self) -> Packet | None:
        now = self._scheduler.now
        while self._queue:
            packet, arrival = self._queue.popleft()
            self._queued_bytes -= packet.size_bytes
            if self._should_drop(now - arrival, now):
                self._drop(packet, now)
                continue
            return packet
        return None

    def _control_law(self, t: float) -> float:
        return t + self._interval_s / math.sqrt(self._count)

    def _ok_to_drop(self, sojourn_s: float, now: float) -> bool:
        if sojourn_s < self._target_s or self._queued_bytes <= self._min_backlog_bytes:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self._interval_s
            return False
        return now >= self._first_above_time

    def _should_drop(self, sojourn_s: float, now: float) -> bool:
        ok = self._ok_to_drop(sojourn_s, now)
        if self._dropping:
            if not ok:
                self._dropping = False
                return False
            if now >= self._drop_next:
                self._count += 1
                self._drop_next = self._control_law(self._drop_next)
                return True
            return False
        if ok:
            self._dropping = True
            # Re-entering a recent dropping episode resumes at a higher
            # drop frequency instead of restarting from one.
            if now - self._drop_next < self._interval_s:
                self._count = max(self._count - 2, 1)
            else:
                self._count = 1
            self._drop_next = self._control_law(now)
            return True
        return False


#: Queue disciplines selectable by name in scenario specs.
QUEUE_DISCIPLINES: dict[str, type[QueueDiscipline]] = {
    DropTailQueue.name: DropTailQueue,
    REDQueue.name: REDQueue,
    CoDelQueue.name: CoDelQueue,
}


def make_queue(
    discipline: str,
    scheduler: EventScheduler,
    rate_bps: float,
    buffer_bytes: float,
    on_departure: Callable[[Packet, float], None],
    on_drop: Callable[[Packet, float], None],
    **params: float,
) -> QueueDiscipline:
    """Construct a queue discipline by registry name.

    ``params`` are forwarded to the discipline's constructor (thresholds,
    target delay, seed, ...); passing a parameter the discipline does not
    accept raises ``TypeError``.
    """
    try:
        cls = QUEUE_DISCIPLINES[discipline]
    except KeyError:
        raise ValueError(
            f"unknown queue discipline {discipline!r}; "
            f"expected one of {sorted(QUEUE_DISCIPLINES)}"
        ) from None
    return cls(scheduler, rate_bps, buffer_bytes, on_departure, on_drop, **params)
