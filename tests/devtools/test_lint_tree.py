"""Whole-tree smoke test: the shipped source tree lints clean.

This is the gating property CI relies on: ``repro lint src`` exits 0 on
the tree as committed, so any new violation fails the build with a
file:line diagnostic.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.mark.skipif(not SRC.exists(), reason="source tree not available")
class TestTreeIsClean:
    def test_src_lints_clean(self):
        diagnostics = lint_paths([SRC])
        assert diagnostics == [], "\n".join(d.render() for d in diagnostics)

    def test_cli_smoke_on_src(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "no invariant violations" in out

    def test_scoped_packages_resolve_module_names(self):
        # Guard against discovery regressions: the walker must see the
        # package chain, otherwise scoped rules silently stop applying.
        from repro.devtools.lint.walker import module_name_for

        spec_py = SRC / "repro" / "runner" / "spec.py"
        assert module_name_for(spec_py) == "repro.runner.spec"
