"""Event study / interrupted time series design (Section 5.1).

An event study compares the state of the system before and after a change.
In the gradual-deployment setting the change is an increase of the
treatment allocation (here: from a low pre-period allocation to a high
post-period allocation, e.g. deploying bitrate capping to 95 % of traffic
on a given day).  The TTE estimate compares treated sessions after the
switch against control sessions before the switch.

Event studies are easy to run — every deployment is one — but they are
vulnerable to seasonality: weekends behave differently from weekdays, and
other changes deployed at the same time confound the comparison.  The
paper finds exactly this: the emulated event study is biased for
throughput, cancelled starts and retransmitted bytes because the post
period lands on a weekend.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.designs.base import (
    AllocationPlan,
    CellSelector,
    ComparisonSpec,
    ExperimentDesign,
)

__all__ = ["EventStudyDesign"]


class EventStudyDesign(ExperimentDesign):
    """Before/after comparison around a deployment day.

    Parameters
    ----------
    switch_day:
        First day of the post (deployed) period.  Days strictly before
        ``switch_day`` form the pre period.
    post_allocation:
        Treatment allocation after the switch (paper: 0.95).
    pre_allocation:
        Treatment allocation before the switch (paper: 0.05, i.e. the small
        initial A/B test keeps running).
    """

    name = "event_study"

    def __init__(
        self,
        switch_day: int,
        post_allocation: float = 0.95,
        pre_allocation: float = 0.05,
    ):
        if not 0.0 < post_allocation <= 1.0:
            raise ValueError("post_allocation must be in (0, 1]")
        if not 0.0 <= pre_allocation < 1.0:
            raise ValueError("pre_allocation must be in [0, 1)")
        if post_allocation <= pre_allocation:
            raise ValueError("post_allocation must exceed pre_allocation")
        self.switch_day = int(switch_day)
        self.post_allocation = float(post_allocation)
        self.pre_allocation = float(pre_allocation)

    def pre_days(self, days: Sequence[int]) -> tuple[int, ...]:
        """Days belonging to the pre (low allocation) period."""
        return tuple(int(d) for d in days if int(d) < self.switch_day)

    def post_days(self, days: Sequence[int]) -> tuple[int, ...]:
        """Days belonging to the post (deployed) period."""
        return tuple(int(d) for d in days if int(d) >= self.switch_day)

    def allocation_plan(
        self, links: Sequence[int], days: Sequence[int]
    ) -> AllocationPlan:
        cells: dict[tuple[int, int], float] = {}
        for day in days:
            allocation = (
                self.post_allocation
                if int(day) >= self.switch_day
                else self.pre_allocation
            )
            for link in links:
                cells[(int(link), int(day))] = allocation
        return AllocationPlan(cells, default=self.pre_allocation)

    def comparisons(
        self, links: Sequence[int], days: Sequence[int]
    ) -> list[ComparisonSpec]:
        links_t = tuple(int(link) for link in links)
        pre = self.pre_days(days)
        post = self.post_days(days)
        if not pre or not post:
            raise ValueError(
                "event study needs at least one pre day and one post day; "
                f"got pre={pre}, post={post}"
            )
        specs = [
            ComparisonSpec(
                estimand="tte",
                treatment_selector=CellSelector(links_t, post, treated=True),
                control_selector=CellSelector(links_t, pre, treated=False),
                description=(
                    "Event-study TTE estimate: treated sessions after the "
                    "deployment vs control sessions before it."
                ),
            ),
        ]
        if self.pre_allocation > 0.0:
            specs.append(
                ComparisonSpec(
                    estimand="spillover",
                    treatment_selector=CellSelector(links_t, post, treated=False),
                    control_selector=CellSelector(links_t, pre, treated=False),
                    description=(
                        "Spillover estimate: control sessions after the deployment "
                        "vs control sessions before it."
                    ),
                )
            )
        return specs

    def describe(self) -> str:
        return (
            f"Event study switching from p={self.pre_allocation:g} to "
            f"p={self.post_allocation:g} on day {self.switch_day}"
        )
