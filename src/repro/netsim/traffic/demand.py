"""Time-varying demand profiles for dynamic traffic.

A demand profile maps simulation time to a non-negative rate multiplier:
arrival processes scale their base rate by ``multiplier(t)``, so the
*intensity* of churn becomes a function of time.  This is the bridge the
paper's time-based designs need — switchback intervals and event-study
windows only reveal their biases when demand actually shifts under them.

Profiles:

* :class:`ConstantDemand` — flat (the default when a source has none);
* :class:`StepDemand` — piecewise-constant levels with step changes at
  given times (a capacity upgrade, a flash crowd arriving);
* :class:`RampDemand` — linear ramp between two levels (the evening
  build-up compressed to simulation scale);
* :class:`DiurnalDemand` — the full daily/weekly shape of
  :class:`repro.workload.demand.DiurnalDemandModel`, time-compressed so
  a day of demand fits in seconds of simulation.

All profiles are frozen dataclasses, so they are picklable and
content-keyable inside :class:`~repro.runner.spec.ScenarioSpec` params.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload.demand import DiurnalDemandModel

__all__ = [
    "DemandProfile",
    "ConstantDemand",
    "StepDemand",
    "RampDemand",
    "DiurnalDemand",
]


class DemandProfile:
    """Base class mapping simulation time to a rate multiplier."""

    def multiplier(self, t: float) -> float:
        """Rate multiplier at simulation time ``t`` (non-negative)."""
        raise NotImplementedError

    def max_multiplier(self, horizon_s: float) -> float:
        """Upper bound of :meth:`multiplier` over ``[0, horizon_s]``.

        Arrival processes use this as the thinning envelope for
        non-homogeneous Poisson sampling; it must dominate the profile
        on the whole horizon.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDemand(DemandProfile):
    """A flat multiplier (1.0 reproduces the unmodulated process)."""

    level: float = 1.0

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("level must be non-negative")

    def multiplier(self, t: float) -> float:
        return self.level

    def max_multiplier(self, horizon_s: float) -> float:
        return self.level


@dataclass(frozen=True)
class StepDemand(DemandProfile):
    """Piecewise-constant demand: ``levels[i]`` applies between steps.

    ``times`` are the (strictly increasing) step instants; ``levels``
    has one more entry than ``times``: ``levels[0]`` before the first
    step, ``levels[i]`` from ``times[i-1]`` onward.
    """

    times: tuple[float, ...]
    levels: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.levels) != len(self.times) + 1:
            raise ValueError("need exactly len(times) + 1 levels")
        if any(level < 0 for level in self.levels):
            raise ValueError("levels must be non-negative")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("times must be strictly increasing")

    def multiplier(self, t: float) -> float:
        level = self.levels[0]
        for step_time, next_level in zip(self.times, self.levels[1:]):
            if t >= step_time:
                level = next_level
            else:
                break
        return level

    def max_multiplier(self, horizon_s: float) -> float:
        active = [self.levels[0]]
        active += [
            level
            for step_time, level in zip(self.times, self.levels[1:])
            if step_time <= horizon_s
        ]
        return max(active)


@dataclass(frozen=True)
class RampDemand(DemandProfile):
    """Linear ramp from ``start_level`` to ``end_level`` over [t0, t1]."""

    start_level: float = 1.0
    end_level: float = 2.0
    t0: float = 0.0
    t1: float = 1.0

    def __post_init__(self) -> None:
        if self.start_level < 0 or self.end_level < 0:
            raise ValueError("levels must be non-negative")
        if self.t1 <= self.t0:
            raise ValueError("t1 must exceed t0")

    def multiplier(self, t: float) -> float:
        if t <= self.t0:
            return self.start_level
        if t >= self.t1:
            return self.end_level
        frac = (t - self.t0) / (self.t1 - self.t0)
        return self.start_level + frac * (self.end_level - self.start_level)

    def max_multiplier(self, horizon_s: float) -> float:
        return max(self.start_level, self.multiplier(horizon_s))


@dataclass(frozen=True)
class DiurnalDemand(DemandProfile):
    """The workload layer's daily/weekly demand shape, time-compressed.

    Bridges :class:`repro.workload.demand.DiurnalDemandModel` into the
    packet simulator: one model *day* is compressed into
    ``seconds_per_day`` of simulation time, and the multiplier at ``t``
    is the model's relative demand for the corresponding (day, hour).
    With the default shape the multiplier peaks at 1.0 (weekday evening
    peak) and bottoms out below 0.1 overnight — a switchback interval
    straddling the compressed evening sees demand several times that of
    one straddling the night.
    """

    model: DiurnalDemandModel = field(default_factory=DiurnalDemandModel)
    seconds_per_day: float = 24.0

    def __post_init__(self) -> None:
        if self.seconds_per_day <= 0:
            raise ValueError("seconds_per_day must be positive")

    def multiplier(self, t: float) -> float:
        if t < 0:
            t = 0.0
        day = int(t // self.seconds_per_day)
        hour = int((t - day * self.seconds_per_day) / (self.seconds_per_day / 24.0))
        return self.model.relative_demand(day, min(hour, 23))

    def max_multiplier(self, horizon_s: float) -> float:
        # Weekend boosts can push the hourly level above the weekday
        # peak of 1.0; bound them explicitly instead of scanning hours.
        return (
            self.model.peak_relative_demand()
            * self.model.weekend_factor
            * self.model.weekend_daytime_boost
        )
