"""Aggregation of per-session outcomes before variance estimation.

The paper's analysis (Appendix B) first aggregates session outcomes to the
hourly level:

.. math::

    Z_t(A) = \\frac{\\sum_i Y_i \\mathbf{1}[h_i = t, A_i = A]}
                   {\\sum_i \\mathbf{1}[h_i = t, A_i = A]}

i.e. the mean outcome of sessions in treatment condition ``A`` during hour
``t``.  Estimating standard errors on the hourly aggregates makes a
near-worst-case assumption that sessions within the same hour are perfectly
correlated.  The alternative — aggregating by account — assumes sessions
from different accounts are independent and yields much tighter intervals
(the paper's Figure 13 contrasts the two).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.units import OutcomeTable

__all__ = [
    "HourlyAggregate",
    "aggregate_hourly",
    "aggregate_by_account",
]


@dataclass(frozen=True)
class HourlyAggregate:
    """Hourly (or generally, per-group) aggregated outcomes.

    Attributes
    ----------
    hour:
        Hour-of-day label of each aggregated observation (used as the fixed
        effect in the regression).
    time_index:
        Monotone time index (day * 24 + hour) used to order observations for
        the Newey-West correction.
    treated:
        Treatment indicator of each aggregated observation.
    value:
        Mean outcome of sessions in that (time, arm) cell.
    count:
        Number of sessions behind each cell.
    """

    hour: np.ndarray
    time_index: np.ndarray
    treated: np.ndarray
    value: np.ndarray
    count: np.ndarray

    def __len__(self) -> int:
        return int(self.value.shape[0])


def aggregate_hourly(table: OutcomeTable, metric: str) -> HourlyAggregate:
    """Aggregate per-session outcomes to hourly treatment/control means.

    Each (day, hour, arm) cell with at least one session produces one
    aggregated observation.  Cells are ordered by time and then by arm so
    that the Newey-West lag structure is meaningful.

    Parameters
    ----------
    table:
        Session-level outcomes with ``day``, ``hour`` and ``treated`` columns.
    metric:
        Name of the outcome column to aggregate.
    """
    for required in ("day", "hour", "treated"):
        if required not in table:
            raise KeyError(f"table is missing required column {required!r}")
    day = table["day"].astype(int)
    hour = table["hour"].astype(int)
    treated = table["treated"].astype(int)
    values = table[metric]

    time_index = day * 24 + hour
    hours_out: list[int] = []
    times_out: list[int] = []
    treated_out: list[int] = []
    values_out: list[float] = []
    counts_out: list[int] = []
    for t in np.unique(time_index):
        in_cell = time_index == t
        for arm in (0, 1):
            mask = in_cell & (treated == arm)
            n = int(mask.sum())
            if n == 0:
                continue
            hours_out.append(int(hour[mask][0]))
            times_out.append(int(t))
            treated_out.append(arm)
            values_out.append(float(values[mask].mean()))
            counts_out.append(n)

    return HourlyAggregate(
        hour=np.array(hours_out, dtype=int),
        time_index=np.array(times_out, dtype=int),
        treated=np.array(treated_out, dtype=int),
        value=np.array(values_out, dtype=float),
        count=np.array(counts_out, dtype=int),
    )


def aggregate_by_account(
    table: OutcomeTable, metric: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Aggregate per-session outcomes to per-account means within each arm.

    Returns
    -------
    (account_values, account_treated, account_counts)
        Mean outcome, treatment indicator and session count per
        (account, arm) cell.  Accounts appearing in both arms (possible when
        a user starts sessions under both assignments) contribute one cell
        per arm.
    """
    for required in ("account_id", "treated"):
        if required not in table:
            raise KeyError(f"table is missing required column {required!r}")
    accounts = table["account_id"].astype(int)
    treated = table["treated"].astype(int)
    values = table[metric]

    out_values: list[float] = []
    out_treated: list[int] = []
    out_counts: list[int] = []
    # Group rows by (account, arm) with a sort-based pass: O(n log n).
    order = np.lexsort((treated, accounts))
    acc_sorted = accounts[order]
    arm_sorted = treated[order]
    val_sorted = values[order]
    boundaries = np.flatnonzero(
        np.diff(acc_sorted) | np.diff(arm_sorted)
    )
    starts = np.concatenate([[0], boundaries + 1])
    ends = np.concatenate([boundaries + 1, [acc_sorted.size]])
    for start, end in zip(starts, ends):
        out_values.append(float(val_sorted[start:end].mean()))
        out_treated.append(int(arm_sorted[start]))
        out_counts.append(int(end - start))

    return (
        np.array(out_values, dtype=float),
        np.array(out_treated, dtype=int),
        np.array(out_counts, dtype=int),
    )
