"""Ablation A1: does the packet-level simulator agree with the fluid model?

The figure benchmarks use the fluid model because it encodes the
steady-state sharing results directly.  This ablation re-runs the
parallel-connections experiment (Figure 2a) on the packet-level
discrete-event simulator and checks that the fluid model's qualitative
conclusions — treated applications roughly double their throughput in an
A/B test, a full switch leaves aggregate throughput unchanged but raises
losses — emerge from first-principles window dynamics as well.

Known fidelity limits (documented in DESIGN.md): the simplified packet
model does not reproduce the paced-vs-unpaced competition of Figure 2b or
BBRv1's aggregate-share behaviour of Figure 3 quantitatively; those
require finer-grained burst and inflight modelling than this substrate
implements.
"""

import pytest
from benchmarks._helpers import run_once

from repro.netsim.packet import FlowConfig, simulate

CAPACITY_MBPS = 50.0
SIM_KWARGS = dict(capacity_mbps=CAPACITY_MBPS, base_rtt_ms=20, duration_s=20, warmup_s=5)


def _ab_test():
    """Half the applications use two connections, half use one."""
    flows = [FlowConfig(i, cc="reno", connections=2, treated=True) for i in range(5)] + [
        FlowConfig(5 + i, cc="reno", connections=1) for i in range(5)
    ]
    return simulate(flows, **SIM_KWARGS)


def _all_one():
    return simulate([FlowConfig(i, cc="reno", connections=1) for i in range(10)], **SIM_KWARGS)


def _all_two():
    return simulate([FlowConfig(i, cc="reno", connections=2) for i in range(10)], **SIM_KWARGS)


def test_ablation_connections_on_packet_simulator(benchmark):
    ab = run_once(benchmark, _ab_test)
    all_one = _all_one()
    all_two = _all_two()

    ab_ratio = ab.group_mean_throughput(True) / ab.group_mean_throughput(False)
    tte_ratio = all_two.total_throughput_mbps() / all_one.total_throughput_mbps()
    print(f"\npacket-level A/B throughput ratio (2 conns / 1 conn): {ab_ratio:.2f}")
    print(f"packet-level all-two vs all-one aggregate throughput ratio: {tte_ratio:.2f}")
    print(
        f"packet-level drops: all-one={all_one.total_drops}, all-two={all_two.total_drops}"
    )

    # Fluid-model conclusion 1: two connections look like a big win in an A/B test.
    assert ab_ratio > 1.5
    # Fluid-model conclusion 2: the full switch does not change aggregate throughput.
    assert tte_ratio == pytest.approx(1.0, abs=0.1)
    # Fluid-model conclusion 3: the full switch increases losses.
    assert all_two.total_drops > all_one.total_drops
    # Both configurations keep the bottleneck busy.
    assert all_one.total_throughput_mbps() == pytest.approx(CAPACITY_MBPS, rel=0.15)
