"""Fleet-engine benchmark: units simulated per second of wall time.

One number summarizes what the sharded packet/fluid hybrid buys: how
many experimental units a fleet run covers per second, with every edge
still a real packet simulation (fast path on) and the upstream network
fluid-modelled.  The recorded ``units_per_s`` feeds the BENCH_JSON
throughput section next to the packet-engine packets/sec rates.
"""

import time
from dataclasses import replace

from _helpers import run_once

from repro.experiments.lab_fleet import QUICK_FLEET
from repro.netsim.fleet import run_fleet


def _bench_spec():
    """Quick-scale geometry (the CI contract's 10k units across 100
    edges) at a shorter horizon to keep the bench fast."""
    return replace(QUICK_FLEET, duration_s=1.5, warmup_s=0.5, seed=7)


def _timed_fleet():
    spec = _bench_spec()
    start = time.perf_counter()
    result = run_fleet(spec)
    wall = time.perf_counter() - start
    return spec, result, wall


def test_fleet_units_per_second(benchmark, throughput):
    spec, result, wall = run_once(benchmark, _timed_fleet)
    assert result.stats.units == spec.units
    assert result.stats.shards == spec.edges
    throughput.record_rates(seconds=wall, units=spec.units)
    # The whole point of sharding + sufficient statistics: a 10k-unit
    # fleet clears hundreds of units per wall-clock second even with
    # every edge packet-simulated (measured locally at ~1000/s).
    assert spec.units / wall > 200
