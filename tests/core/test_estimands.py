"""Tests for repro.core.estimands: potential-outcome curves and estimands."""

import pytest

from repro.core.estimands import EstimandSet, PotentialOutcomeCurve, sutva_holds


def interference_curve():
    """A curve shaped like the paper's Figure 1b (interference present)."""
    # Treatment gets 2x the control's share at any interior allocation, but
    # both converge to 1.0 at the endpoints (like the connections test).
    mu_t = {0.1: 1.8, 0.5: 1.4, 0.9: 1.05, 1.0: 1.0}
    mu_c = {0.0: 1.0, 0.1: 0.9, 0.5: 0.7, 0.9: 0.55}
    return PotentialOutcomeCurve("throughput", mu_t, mu_c)


def flat_curve():
    """A curve consistent with SUTVA (Figure 1a)."""
    mu_t = {0.1: 2.0, 0.5: 2.0, 1.0: 2.0}
    mu_c = {0.0: 1.0, 0.5: 1.0, 0.9: 1.0}
    return PotentialOutcomeCurve("metric", mu_t, mu_c)


class TestCurveConstruction:
    def test_requires_treatment_means(self):
        with pytest.raises(ValueError):
            PotentialOutcomeCurve("m", {}, {0.0: 1.0})

    def test_requires_control_means(self):
        with pytest.raises(ValueError):
            PotentialOutcomeCurve("m", {1.0: 1.0}, {})

    def test_treatment_at_zero_invalid(self):
        with pytest.raises(ValueError):
            PotentialOutcomeCurve("m", {0.0: 1.0}, {0.0: 1.0})

    def test_control_at_one_invalid(self):
        with pytest.raises(ValueError):
            PotentialOutcomeCurve("m", {1.0: 1.0}, {1.0: 1.0})

    def test_allocations_sorted_union(self):
        curve = interference_curve()
        assert curve.allocations == sorted(set(curve.allocations))
        assert 0.0 in curve.allocations and 1.0 in curve.allocations


class TestCurveAccess:
    def test_exact_lookup(self):
        curve = interference_curve()
        assert curve.mu_treatment(0.5) == pytest.approx(1.4)
        assert curve.mu_control(0.5) == pytest.approx(0.7)

    def test_interpolation(self):
        curve = interference_curve()
        assert 1.4 < curve.mu_treatment(0.3) < 1.8

    def test_out_of_range_raises(self):
        curve = interference_curve()
        with pytest.raises(ValueError):
            curve.mu_treatment(0.01)


class TestEstimands:
    def test_ate(self):
        curve = interference_curve()
        assert curve.ate(0.5) == pytest.approx(0.7)

    def test_tte(self):
        assert interference_curve().tte() == pytest.approx(0.0)

    def test_tte_requires_endpoints(self):
        curve = PotentialOutcomeCurve("m", {0.5: 1.0}, {0.0: 1.0})
        with pytest.raises(ValueError):
            curve.tte()

    def test_spillover(self):
        curve = interference_curve()
        assert curve.spillover(0.9) == pytest.approx(0.55 - 1.0)

    def test_spillover_undefined_at_full_allocation(self):
        with pytest.raises(ValueError):
            interference_curve().spillover(1.0)

    def test_partial_effect(self):
        curve = interference_curve()
        assert curve.partial_effect(0.5) == pytest.approx(0.4)

    def test_ab_test_bias(self):
        curve = interference_curve()
        assert curve.ab_test_bias(0.5) == pytest.approx(0.7)

    def test_estimand_set(self):
        es = interference_curve().estimands(0.5)
        assert isinstance(es, EstimandSet)
        assert es.ate == pytest.approx(0.7)
        assert es.tte == pytest.approx(0.0)
        assert es.ab_test_bias == pytest.approx(0.7)

    def test_estimands_at_full_allocation_have_zero_spillover(self):
        es = interference_curve().estimands(1.0)
        assert es.spillover == 0.0
        assert es.ate == pytest.approx(es.tte)


class TestEstimandSet:
    def test_sign_flip_detection(self):
        es = EstimandSet("m", 0.05, ate=-0.05, tte=0.12, spillover=0.1, partial_effect=0.1)
        assert es.sign_flipped

    def test_no_sign_flip_when_same_direction(self):
        es = EstimandSet("m", 0.05, ate=0.05, tte=0.12, spillover=0.0, partial_effect=0.1)
        assert not es.sign_flipped

    def test_no_sign_flip_when_zero(self):
        es = EstimandSet("m", 0.05, ate=0.0, tte=0.12, spillover=0.0, partial_effect=0.1)
        assert not es.sign_flipped

    def test_bias_zero_when_ab_equals_tte(self):
        es = EstimandSet("m", 0.5, ate=0.2, tte=0.2, spillover=0.0, partial_effect=0.2)
        assert es.ab_test_bias == pytest.approx(0.0)


class TestSutvaCheck:
    def test_flat_curve_satisfies_sutva(self):
        assert sutva_holds(flat_curve())

    def test_interference_curve_violates_sutva(self):
        assert not sutva_holds(interference_curve())

    def test_relative_tolerance(self):
        mu_t = {0.5: 100.0, 1.0: 100.4}
        mu_c = {0.0: 50.0, 0.5: 50.1}
        curve = PotentialOutcomeCurve("m", mu_t, mu_c)
        assert not sutva_holds(curve, tolerance=1e-9)
        assert sutva_holds(curve, tolerance=0.01, relative=True)
