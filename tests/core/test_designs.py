"""Tests for the experiment designs in repro.core.designs."""

import pytest

from repro.core.designs import (
    AATestDesign,
    ABTestDesign,
    AllocationPlan,
    EventStudyDesign,
    GradualDeploymentDesign,
    PairedLinkDesign,
    SwitchbackDesign,
)
from repro.core.designs.base import CellSelector

LINKS = (1, 2)
DAYS = (0, 1, 2, 3, 4)


class TestCellSelector:
    def test_wildcards_match_everything(self):
        selector = CellSelector()
        assert selector.matches(1, 0, True)
        assert selector.matches(2, 4, False)

    def test_link_filter(self):
        selector = CellSelector(links=(1,))
        assert selector.matches(1, 0, True)
        assert not selector.matches(2, 0, True)

    def test_day_filter(self):
        selector = CellSelector(days=(0, 1))
        assert selector.matches(1, 1, False)
        assert not selector.matches(1, 3, False)

    def test_arm_filter(self):
        selector = CellSelector(treated=True)
        assert selector.matches(1, 0, True)
        assert not selector.matches(1, 0, False)


class TestAllocationPlan:
    def test_default_used_for_unknown_cells(self):
        plan = AllocationPlan({(1, 0): 0.9}, default=0.1)
        assert plan.allocation(1, 0) == pytest.approx(0.9)
        assert plan.allocation(2, 3) == pytest.approx(0.1)

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError):
            AllocationPlan({(1, 0): 1.5})

    def test_invalid_default_raises(self):
        with pytest.raises(ValueError):
            AllocationPlan({}, default=-0.2)

    def test_links_and_days(self):
        plan = AllocationPlan({(1, 0): 0.5, (2, 3): 0.5})
        assert plan.links == [1, 2]
        assert plan.days == [0, 3]


class TestABTestDesign:
    def test_plan_uses_single_allocation(self):
        design = ABTestDesign(0.05)
        plan = design.allocation_plan(LINKS, DAYS)
        for link in LINKS:
            for day in DAYS:
                assert plan.allocation(link, day) == pytest.approx(0.05)

    def test_single_comparison(self):
        comparisons = ABTestDesign(0.05).comparisons(LINKS, DAYS)
        assert len(comparisons) == 1
        assert comparisons[0].estimand == "ab_0.05"

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError):
            ABTestDesign(1.2)

    def test_describe_mentions_allocation(self):
        assert "0.05" in ABTestDesign(0.05).describe()


class TestAATestDesign:
    def test_no_treatment_flag(self):
        assert AATestDesign().applies_treatment is False

    def test_comparison_is_null(self):
        comparisons = AATestDesign(0.5).comparisons(LINKS, DAYS)
        assert comparisons[0].estimand == "aa_null"

    def test_plan_allocation(self):
        plan = AATestDesign(0.5).allocation_plan(LINKS, DAYS)
        assert plan.allocation(1, 0) == pytest.approx(0.5)


class TestPairedLinkDesign:
    def test_default_allocations(self):
        design = PairedLinkDesign()
        plan = design.allocation_plan(LINKS, DAYS)
        assert plan.allocation(1, 0) == pytest.approx(0.95)
        assert plan.allocation(2, 0) == pytest.approx(0.05)

    def test_four_comparisons(self):
        estimands = {c.estimand for c in PairedLinkDesign().comparisons(LINKS, DAYS)}
        assert estimands == {"tte", "spillover", "ab_0.95", "ab_0.05"}

    def test_tte_comparison_crosses_links(self):
        specs = {c.estimand: c for c in PairedLinkDesign().comparisons(LINKS, DAYS)}
        tte = specs["tte"]
        assert tte.treatment_selector.links == (1,)
        assert tte.control_selector.links == (2,)
        assert tte.treatment_selector.treated is True
        assert tte.control_selector.treated is False

    def test_spillover_comparison_uses_control_arms(self):
        specs = {c.estimand: c for c in PairedLinkDesign().comparisons(LINKS, DAYS)}
        spill = specs["spillover"]
        assert spill.treatment_selector.treated is False
        assert spill.control_selector.treated is False

    def test_same_links_raise(self):
        with pytest.raises(ValueError):
            PairedLinkDesign(treated_link=1, control_link=1)

    def test_high_must_exceed_low(self):
        with pytest.raises(ValueError):
            PairedLinkDesign(high_allocation=0.05, low_allocation=0.95)

    def test_third_link_gets_zero_allocation(self):
        plan = PairedLinkDesign().allocation_plan((1, 2, 3), DAYS)
        assert plan.allocation(3, 0) == 0.0


class TestSwitchbackDesign:
    def test_explicit_treatment_days(self):
        design = SwitchbackDesign(treatment_days=(0, 2, 4))
        assert design.treatment_days_for(DAYS) == (0, 2, 4)
        assert design.control_days_for(DAYS) == (1, 3)

    def test_explicit_days_must_be_in_experiment(self):
        design = SwitchbackDesign(treatment_days=(9,))
        with pytest.raises(ValueError):
            design.treatment_days_for(DAYS)

    def test_random_assignment_covers_both_arms(self):
        design = SwitchbackDesign(seed=3)
        treatment = design.treatment_days_for(DAYS)
        control = design.control_days_for(DAYS)
        assert treatment and control
        assert set(treatment) | set(control) == set(DAYS)
        assert not set(treatment) & set(control)

    def test_allocation_plan_matches_intervals(self):
        design = SwitchbackDesign(treatment_days=(0, 2, 4))
        plan = design.allocation_plan(LINKS, DAYS)
        assert plan.allocation(1, 0) == pytest.approx(0.95)
        assert plan.allocation(1, 1) == pytest.approx(0.05)

    def test_spillover_comparison_present_when_control_allocation_positive(self):
        design = SwitchbackDesign(treatment_days=(0, 2, 4), control_allocation=0.05)
        estimands = {c.estimand for c in design.comparisons(LINKS, DAYS)}
        assert estimands == {"tte", "spillover"}

    def test_no_spillover_comparison_when_control_allocation_zero(self):
        design = SwitchbackDesign(treatment_days=(0, 2), control_allocation=0.0)
        estimands = {c.estimand for c in design.comparisons(LINKS, DAYS)}
        assert estimands == {"tte"}

    def test_multiday_intervals(self):
        design = SwitchbackDesign(interval_days=2, seed=0)
        days = tuple(range(6))
        treatment = design.treatment_days_for(days)
        # intervals are [0,1], [2,3], [4,5]; each interval assigned as a block
        for interval in ((0, 1), (2, 3), (4, 5)):
            in_treatment = [d in treatment for d in interval]
            assert all(in_treatment) or not any(in_treatment)

    def test_invalid_allocations_raise(self):
        with pytest.raises(ValueError):
            SwitchbackDesign(treatment_allocation=0.05, control_allocation=0.95)


class TestEventStudyDesign:
    def test_pre_and_post_days(self):
        design = EventStudyDesign(switch_day=2)
        assert design.pre_days(DAYS) == (0, 1)
        assert design.post_days(DAYS) == (2, 3, 4)

    def test_allocation_plan(self):
        plan = EventStudyDesign(switch_day=2).allocation_plan(LINKS, DAYS)
        assert plan.allocation(1, 1) == pytest.approx(0.05)
        assert plan.allocation(1, 2) == pytest.approx(0.95)

    def test_comparisons_require_both_periods(self):
        design = EventStudyDesign(switch_day=10)
        with pytest.raises(ValueError):
            design.comparisons(LINKS, DAYS)

    def test_estimands(self):
        estimands = {c.estimand for c in EventStudyDesign(2).comparisons(LINKS, DAYS)}
        assert estimands == {"tte", "spillover"}

    def test_invalid_allocations_raise(self):
        with pytest.raises(ValueError):
            EventStudyDesign(2, post_allocation=0.01, pre_allocation=0.5)


class TestGradualDeploymentDesign:
    def test_default_ramp_is_monotone(self):
        design = GradualDeploymentDesign()
        ramp = design.ramp
        assert list(ramp) == sorted(ramp)

    def test_non_monotone_ramp_raises(self):
        with pytest.raises(ValueError):
            GradualDeploymentDesign(ramp=(0.5, 0.1))

    def test_allocation_follows_ramp(self):
        design = GradualDeploymentDesign(ramp=(0.0, 0.5, 1.0))
        plan = design.allocation_plan(LINKS, (0, 1, 2, 3))
        assert plan.allocation(1, 0) == 0.0
        assert plan.allocation(1, 1) == 0.5
        assert plan.allocation(1, 2) == 1.0
        # Days beyond the ramp stay at the final allocation.
        assert plan.allocation(1, 3) == 1.0

    def test_comparisons_include_tte_when_ramp_reaches_full(self):
        design = GradualDeploymentDesign(ramp=(0.0, 0.5, 1.0))
        estimands = {c.estimand for c in design.comparisons(LINKS, (0, 1, 2))}
        assert "tte" in estimands
        assert "ab_0.5" in estimands
        assert "spillover_0.5" in estimands
        assert "partial_0.5" in estimands

    def test_empty_ramp_raises(self):
        with pytest.raises(ValueError):
            GradualDeploymentDesign(ramp=())

    def test_negative_day_index_raises(self):
        with pytest.raises(ValueError):
            GradualDeploymentDesign().allocation_for_day_index(-1)
