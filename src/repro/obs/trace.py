"""Structured run tracing: spans, Chrome trace events, live progress.

This module is the *only* place in the codebase allowed to read a wall
clock (:func:`walltime`, with an explicit ``repro lint`` suppression).
Wall time never flows into simulation results or content keys — it only
annotates *how long the computation took*, in three artifacts written to
a run directory:

``trace.jsonl``
    One JSON object per line, written incrementally as events happen:
    ``{"event": "task", ...}`` spans and ``{"event": "cache", ...}``
    hit/miss markers.  Greppable, tail-able, crash-safe.
``trace.json``
    The same spans in Chrome trace-event format — open in Perfetto or
    ``chrome://tracing`` to see worker lanes and task durations.
``meta.json`` / ``profile.json``
    Run metadata (command, totals, engine counters) and merged cProfile
    hotspot rows when ``--profile`` was on.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from repro.obs.profile import ProfileRow, merge_profile_rows, run_profiled

__all__ = ["walltime", "TaskRun", "observe_spec", "RunTracer", "ProgressPrinter"]


def walltime() -> float:
    """Seconds since the epoch, for span timing only.

    The single sanctioned wall-clock read: simulation code must never
    call this (DET002 bans direct clock reads there), and its value must
    never enter a simulation result or content key.
    """
    return time.time()  # repro-lint: disable=DET002


@dataclass(frozen=True)
class TaskRun:
    """One executed runner task, as observed by the tracer.

    Picklable and flat on purpose: workers build these in child
    processes and ship them back to the parent for folding.

    Attributes
    ----------
    task:
        Task name from the spec (``"packet_arm"``, ``"fleet_shard_arm"``, ...).
    label:
        Human label from the spec, or the task name when unset.
    started:
        Wall time the task started (epoch seconds).
    wall_s:
        Wall duration of the task body.
    pid:
        Process id of the worker that ran it.
    profile_rows:
        cProfile hotspot rows when profiling was on, else empty.
    result:
        The task's return value.
    """

    task: str
    label: str
    started: float
    wall_s: float
    pid: int
    profile_rows: tuple[ProfileRow, ...] = ()
    result: Any = None


def observe_spec(spec: Any, profile: bool = False) -> TaskRun:
    """Execute one runner spec and wrap the outcome in a :class:`TaskRun`.

    Module-level so ``ProcessPoolExecutor`` can pickle it; imports the
    runner lazily to keep ``repro.obs`` import-light and cycle-free.
    """
    from repro.runner.spec import run_spec

    started = walltime()
    if profile:
        result, rows = run_profiled(lambda: run_spec(spec))
    else:
        result, rows = run_spec(spec), ()
    return TaskRun(
        task=spec.task,
        label=spec.label or spec.task,
        started=started,
        wall_s=walltime() - started,
        pid=os.getpid(),
        profile_rows=tuple(rows),
        result=result,
    )


class RunTracer:
    """Collects task spans and cache events; writes the run directory.

    Usage::

        tracer = RunTracer(rundir, command="repro sweep ...")
        ...  # executor calls tracer.task(run) / tracer.cache_event(...)
        tracer.add_counters({"events_processed": ...})
        tracer.finish({"figure": "fleet"})
    """

    def __init__(self, directory: str | Path, command: str = ""):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.command = command
        self.started = walltime()
        self.tasks: list[TaskRun] = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.counters: dict[str, float] = {}
        self._jsonl: IO[str] = (self.directory / "trace.jsonl").open("w", encoding="utf-8")
        self._emit({"event": "run_start", "command": command, "started": self.started})

    def _emit(self, payload: Mapping[str, Any]) -> None:
        self._jsonl.write(json.dumps(payload, sort_keys=True) + "\n")
        self._jsonl.flush()

    def cache_event(self, hit: bool, label: str) -> None:
        """Record one cache lookup outcome."""
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        self._emit({"event": "cache", "hit": hit, "label": label, "t": walltime() - self.started})

    def task(self, run: TaskRun) -> None:
        """Fold one completed task span in."""
        self.tasks.append(run)
        self._emit(
            {
                "event": "task",
                "task": run.task,
                "label": run.label,
                "pid": run.pid,
                "started": run.started - self.started,
                "wall_s": run.wall_s,
            }
        )

    def add_counters(self, counters: Mapping[str, float]) -> None:
        """Fold engine/run counters in by summation."""
        for name in sorted(counters):
            self.counters[name] = self.counters.get(name, 0.0) + float(counters[name])

    def chrome_events(self) -> list[dict[str, Any]]:
        """The spans as Chrome trace-event dicts (one lane per worker pid)."""
        events: list[dict[str, Any]] = []
        for run in self.tasks:
            events.append(
                {
                    "name": run.label,
                    "cat": run.task,
                    "ph": "X",
                    "ts": max(0.0, (run.started - self.started) * 1e6),
                    "dur": run.wall_s * 1e6,
                    "pid": run.pid,
                    "tid": 1,
                    "args": {"task": run.task},
                }
            )
        return events

    def finish(self, meta: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Write trace.json / profile.json / meta.json; return the meta dict."""
        wall_s = walltime() - self.started
        self._emit({"event": "run_end", "wall_s": wall_s, "tasks": len(self.tasks)})
        self._jsonl.close()

        trace = {"traceEvents": self.chrome_events(), "displayTimeUnit": "ms"}
        (self.directory / "trace.json").write_text(json.dumps(trace, indent=1), encoding="utf-8")

        profiled = [run.profile_rows for run in self.tasks if run.profile_rows]
        if profiled:
            rows = merge_profile_rows(profiled)
            payload = {"schema": 1, "tasks_profiled": len(profiled), "rows": rows}
            (self.directory / "profile.json").write_text(
                json.dumps(payload, indent=1), encoding="utf-8"
            )

        summary: dict[str, Any] = {
            "schema": 1,
            "command": self.command,
            "wall_s": wall_s,
            "tasks": len(self.tasks),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "workers": sorted({run.pid for run in self.tasks}),
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
        }
        if meta:
            summary.update(meta)
        (self.directory / "meta.json").write_text(json.dumps(summary, indent=1), encoding="utf-8")
        return summary


@dataclass
class ProgressPrinter:
    """Single-line live progress for fleet/sweep runs (stderr by default).

    Callable with ``(done, total, run)`` — the executor's
    ``on_task_done`` signature.  Tracks its own start time per batch
    (reset whenever ``done`` goes backwards, i.e. a new ``map`` call)
    and prints ``done/total`` with a units-per-second rate.
    """

    label: str = "tasks"
    stream: IO[str] = field(default_factory=lambda: sys.stderr)
    _t0: float = field(default=0.0, repr=False)
    _last_done: int = field(default=-1, repr=False)

    def __call__(self, done: int, total: int, run: TaskRun | None = None) -> None:
        if done <= self._last_done or self._t0 == 0.0:
            self._t0 = walltime() - (run.wall_s if run is not None else 0.0)
        self._last_done = done
        elapsed = max(walltime() - self._t0, 1e-9)
        rate = done / elapsed
        end = "\n" if done >= total else "\r"
        self.stream.write(f"  {self.label}: {done}/{total} ({rate:.1f}/s){end}")
        self.stream.flush()
